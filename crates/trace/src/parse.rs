//! Parsing exported line-JSON traces back into [`TraceEvent`]s.
//!
//! The inverse of [`Tracer::to_json_lines`][crate::Tracer::to_json_lines]:
//! a minimal parser for exactly the flat-object, no-string-escapes format
//! the exporter emits, so `trace_report` can analyze a trace file offline
//! without a JSON library. Unknown keys are ignored (forward-compatible);
//! malformed lines are errors, not silently skipped — a truncated or
//! corrupted trace should fail loudly, not produce a subtly wrong report.

use std::fmt;

use babol_sim::SimTime;

use crate::{Component, Counter, TraceEvent, TraceKind};

/// A trace read back from line-JSON.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// The events, in file order (oldest first).
    pub events: Vec<TraceEvent>,
    /// Ring-drop count from the footer record (0 if the file had no
    /// footer — traces from older exporters).
    pub dropped: u64,
    /// Per-kind ring-drop counts from the footer (`dropped_<kind>` keys),
    /// in footer key order; kinds the footer omitted lost nothing.
    pub dropped_by_kind: Vec<(TraceKind, u64)>,
    /// Shard (channel) id from the footer record (0 if absent — traces
    /// from single-system runs or older exporters).
    pub shard: u32,
    /// Whether a footer record was present.
    pub has_footer: bool,
    /// FTL production counters carried in the footer
    /// ([`Counter::FTL_FOOTER`]), in footer key order; absent keys are 0.
    pub ftl_counters: Vec<(Counter, u64)>,
}

impl ParsedTrace {
    /// Ring drops of one kind (0 when the footer carried no entry).
    pub fn dropped_of(&self, kind: TraceKind) -> u64 {
        self.dropped_by_kind
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0, |&(_, n)| n)
    }

    /// Value of an FTL footer counter (0 when the footer omitted it).
    pub fn ftl_counter(&self, c: Counter) -> u64 {
        self.ftl_counters
            .iter()
            .find(|&&(k, _)| k == c)
            .map_or(0, |&(_, n)| n)
    }

    /// True when the footer carried any FTL production counter.
    pub fn has_ftl_counters(&self) -> bool {
        self.ftl_counters.iter().any(|&(_, n)| n != 0)
    }
}

/// Why a trace file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// Splits one flat JSON object (`{"k":v,...}`, no nesting except the
/// values themselves being bare ints/strings/bools) into key/value pairs.
pub(crate) fn fields(line: &str) -> Option<Vec<(&str, &str)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for pair in body.split(',') {
        let (k, v) = pair.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        out.push((k, v.trim()));
    }
    Some(out)
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

/// Parses a line-JSON trace export (see
/// [`Tracer::to_json_lines`][crate::Tracer::to_json_lines]). Blank lines
/// are skipped; the footer record, if present, must be last.
pub fn parse_json_lines(text: &str) -> Result<ParsedTrace, ParseError> {
    let mut trace = ParsedTrace::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |reason: &str| ParseError {
            line: lineno,
            reason: reason.to_string(),
        };
        if line.trim().is_empty() {
            continue;
        }
        if trace.has_footer {
            return Err(err("event record after footer"));
        }
        let fields = fields(line).ok_or_else(|| err("not a flat JSON object"))?;
        if fields.iter().any(|&(k, _)| k == "footer") {
            for (k, v) in fields {
                match k {
                    "dropped" => {
                        trace.dropped = v.parse().map_err(|_| err("bad dropped count"))?;
                    }
                    "shard" => {
                        trace.shard = v.parse().map_err(|_| err("bad shard id"))?;
                    }
                    _ => {
                        if let Some(kind) =
                            k.strip_prefix("dropped_").and_then(TraceKind::from_name)
                        {
                            let n = v.parse().map_err(|_| err("bad drop count"))?;
                            trace.dropped_by_kind.push((kind, n));
                        } else if let Some(c) =
                            Counter::FTL_FOOTER.into_iter().find(|c| c.name() == k)
                        {
                            let n = v.parse().map_err(|_| err("bad ftl counter"))?;
                            trace.ftl_counters.push((c, n));
                        }
                    }
                }
            }
            trace.has_footer = true;
            continue;
        }
        let (mut t, mut component, mut kind, mut lun, mut op_id) = (None, None, None, None, None);
        for (k, v) in fields {
            match k {
                "t_ps" => t = Some(v.parse().map_err(|_| err("bad t_ps"))?),
                "component" => {
                    let name = unquote(v).ok_or_else(|| err("component not a string"))?;
                    component =
                        Some(Component::from_name(name).ok_or_else(|| err("unknown component"))?);
                }
                "kind" => {
                    let name = unquote(v).ok_or_else(|| err("kind not a string"))?;
                    kind = Some(TraceKind::from_name(name).ok_or_else(|| err("unknown kind"))?);
                }
                "lun" => lun = Some(v.parse().map_err(|_| err("bad lun"))?),
                "op_id" => op_id = Some(v.parse().map_err(|_| err("bad op_id"))?),
                _ => {} // unknown keys: forward-compatible skip
            }
        }
        trace.events.push(TraceEvent {
            t: SimTime::from_picos(t.ok_or_else(|| err("missing t_ps"))?),
            component: component.ok_or_else(|| err("missing component"))?,
            kind: kind.ok_or_else(|| err("missing kind"))?,
            lun: lun.ok_or_else(|| err("missing lun"))?,
            op_id: op_id.ok_or_else(|| err("missing op_id"))?,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSink, Tracer};

    #[test]
    fn roundtrips_exporter_output() {
        let mut t = Tracer::enabled();
        for i in 0..8u64 {
            t.record(TraceEvent {
                t: SimTime::from_picos(i * 1_000),
                component: Component::ALL[(i % 6) as usize],
                kind: TraceKind::ALL[(i % 17) as usize],
                lun: i as u32 % 4,
                op_id: i,
            });
        }
        let parsed = parse_json_lines(&t.to_json_lines()).unwrap();
        let original: Vec<TraceEvent> = t.events().copied().collect();
        assert_eq!(parsed.events, original);
        assert!(parsed.has_footer);
        assert_eq!(parsed.dropped, 0);
        assert_eq!(parsed.shard, 0);
    }

    #[test]
    fn footer_roundtrips_the_shard_tag() {
        let mut t = Tracer::enabled();
        t.set_shard(11);
        t.record(TraceEvent {
            t: SimTime::from_picos(1),
            component: Component::Sim,
            kind: TraceKind::SchedPick,
            lun: 0,
            op_id: 0,
        });
        let parsed = parse_json_lines(&t.to_json_lines()).unwrap();
        assert_eq!(parsed.shard, 11);
        // Traces without the tag (older exporters) default to shard 0.
        let legacy = "{\"footer\":true,\"events\":0,\"dropped\":0}\n";
        assert_eq!(parse_json_lines(legacy).unwrap().shard, 0);
    }

    #[test]
    fn footer_carries_drop_count() {
        let mut t = Tracer::with_capacity(1);
        for i in 0..4u64 {
            t.record(TraceEvent {
                t: SimTime::from_picos(i),
                component: Component::Sim,
                kind: TraceKind::SchedPick,
                lun: 0,
                op_id: i,
            });
        }
        let parsed = parse_json_lines(&t.to_json_lines()).unwrap();
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.dropped, 3);
        assert_eq!(parsed.dropped_of(TraceKind::SchedPick), 3);
        assert_eq!(parsed.dropped_of(TraceKind::OpIssue), 0);
        // Legacy footers (no breakdown keys) parse with every kind at 0.
        let legacy = "{\"footer\":true,\"events\":0,\"dropped\":9,\"shard\":0}\n";
        let parsed = parse_json_lines(legacy).unwrap();
        assert_eq!(parsed.dropped, 9);
        assert!(parsed.dropped_by_kind.is_empty());
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "{\"t_ps\":1,\"component\":\"sim\",\"kind\":\"sched_pick\",\"lun\":0,\"op_id\":0}\nnot json\n";
        let e = parse_json_lines(text).unwrap_err();
        assert_eq!(e.line, 2);
        let text = r#"{"t_ps":1,"component":"bogus","kind":"sched_pick","lun":0,"op_id":0}"#;
        assert!(parse_json_lines(text).is_err());
        let text = r#"{"component":"sim","kind":"sched_pick","lun":0,"op_id":0}"#;
        assert!(parse_json_lines(text)
            .unwrap_err()
            .reason
            .contains("missing t_ps"));
    }

    #[test]
    fn footer_roundtrips_ftl_counters() {
        use crate::Component;
        let mut t = Tracer::enabled();
        t.count(Component::Ftl, Counter::CacheDirtyEvicts, 4);
        t.count(Component::Ftl, Counter::EnergyErasePj, 248_000_000);
        let parsed = parse_json_lines(&t.to_json_lines()).unwrap();
        assert!(parsed.has_ftl_counters());
        assert_eq!(parsed.ftl_counter(Counter::CacheDirtyEvicts), 4);
        assert_eq!(parsed.ftl_counter(Counter::EnergyErasePj), 248_000_000);
        assert_eq!(parsed.ftl_counter(Counter::CacheHits), 0);
        // Legacy footers parse with every FTL counter at 0.
        let legacy = "{\"footer\":true,\"events\":0,\"dropped\":0,\"shard\":0}\n";
        let parsed = parse_json_lines(legacy).unwrap();
        assert!(!parsed.has_ftl_counters());
        assert_eq!(parsed.ftl_counter(Counter::WearMigrations), 0);
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let text = r#"{"t_ps":5,"component":"ftl","kind":"gc_start","lun":2,"op_id":9,"extra":42}"#;
        let parsed = parse_json_lines(text).unwrap();
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.events[0].kind, TraceKind::GcStart);
        assert!(!parsed.has_footer);
    }
}

//! Streaming sim-time telemetry: windowed metrics frames.
//!
//! A [`MetricsHub`] slices simulated time into fixed windows (`[k·W,
//! (k+1)·W)` picoseconds from time zero) and accumulates one
//! [`MetricsFrame`] per window. It is fed two ways, both cheap:
//!
//! * **Latency observations** — each completed host op is routed to the
//!   frame containing its *completion* timestamp and recorded into that
//!   frame's [`Histogram`]. Because routing is by timestamp, merging the
//!   per-window histograms reproduces the whole-run histogram exactly
//!   (bucket-for-bucket — the property test in `tests/properties.rs`
//!   checks this), and ops harvested slightly after the simulator crossed
//!   a boundary still land in the right window.
//! * **Delta snapshots** — the driver loop periodically hands the hub a
//!   [`MetricsSnapshot`] of counters the FTL already maintains (cache
//!   hits, GC cycles, energy, wear). The hub attributes the delta since
//!   the previous snapshot to the window containing `now` and stamps the
//!   snapshot's gauges (queue depth, dirty pages, free blocks) as the
//!   window's closing values. No new hot-path events exist: sampling cost
//!   is a dozen integer subtractions per driver-loop iteration, and the
//!   disabled hub costs one predictable branch.
//!
//! Frames from a run (or from every shard of a [`MultiSsd`]-style run)
//! assemble into a [`MetricsSeries`], which exports as a stable
//! `babol-metrics-v1` line-JSON sidecar, parses back offline, and renders
//! as an ASCII sparkline dashboard with SLO verdicts
//! ([`render_metrics_dashboard`]).
//!
//! `MultiSsd` is defined in `babol-ftl`; here the multi-shard shape is
//! just "one hub per shard plus a device-level hub for host latencies",
//! combined by [`MetricsSeries::from_shards`].

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use babol_sim::{SimDuration, SimTime};

use crate::hist::Histogram;
use crate::parse::fields;
use crate::slo::{SloSpec, SloVerdict};
use crate::ParseError;

/// Schema tag on the first line of every `metrics.jsonl` export.
pub const METRICS_SCHEMA: &str = "babol-metrics-v1";

/// Shard tag used for device-level (cross-shard) frames in the export.
const DEVICE_SHARD: i64 = -1;

/// Cumulative controller totals handed to [`MetricsHub::sample`]. The
/// first group are monotonic counters (the hub attributes successive
/// differences to windows); the rest are instantaneous gauges (the hub
/// stamps the last value seen inside each window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Write-cache hits, cumulative.
    pub cache_hits: u64,
    /// Write-cache misses, cumulative.
    pub cache_misses: u64,
    /// Dirty cache evictions flushed to flash, cumulative.
    pub cache_dirty_evicts: u64,
    /// Foreground GC cycles, cumulative.
    pub gc_cycles: u64,
    /// Energy spent, cumulative picojoules.
    pub energy_pj: u64,
    /// Cold blocks migrated by the wear leveler, cumulative.
    pub wear_migrations: u64,
    /// Blocks retired to the bad-block map, cumulative.
    pub blocks_retired: u64,
    /// Host ops in flight right now (gauge).
    pub queue_depth: u32,
    /// Dirty pages resident in the write cache (gauge).
    pub cache_dirty: u32,
    /// Total pages resident in the write cache (gauge).
    pub cache_len: u32,
    /// Free blocks across all LUNs — the GC debt gauge.
    pub free_blocks: u32,
    /// Worst per-LUN erase-count spread (gauge).
    pub wear_spread: u32,
}

/// One sim-time window's worth of telemetry.
#[derive(Debug, Clone, Default)]
pub struct MetricsFrame {
    /// Window index: this frame covers `[index·W, (index+1)·W)`.
    pub index: u64,
    /// Host ops completed in the window.
    pub ops: u64,
    /// Write-cache hits in the window.
    pub cache_hits: u64,
    /// Write-cache misses in the window.
    pub cache_misses: u64,
    /// Dirty cache evictions in the window.
    pub cache_dirty_evicts: u64,
    /// GC cycles run in the window.
    pub gc_cycles: u64,
    /// Energy spent in the window, picojoules.
    pub energy_pj: u64,
    /// Wear-leveling migrations in the window.
    pub wear_migrations: u64,
    /// Blocks retired in the window.
    pub blocks_retired: u64,
    /// Queue depth at the last sample in the window (gauge).
    pub queue_depth: u32,
    /// Dirty cache pages at the last sample in the window (gauge).
    pub cache_dirty: u32,
    /// Cache pages resident at the last sample in the window (gauge).
    pub cache_len: u32,
    /// Free blocks at the last sample in the window (gauge).
    pub free_blocks: u32,
    /// Worst wear spread at the last sample in the window (gauge).
    pub wear_spread: u32,
    /// Latencies of ops whose completion fell in the window.
    pub lat: Histogram,
}

impl MetricsFrame {
    /// Start of the window this frame covers.
    pub fn start(&self, window: SimDuration) -> SimTime {
        SimTime::from_picos(self.index * window.as_picos())
    }

    /// Exclusive end of the window this frame covers.
    pub fn end(&self, window: SimDuration) -> SimTime {
        SimTime::from_picos((self.index + 1) * window.as_picos())
    }

    /// Completed ops per second, from the window's op count.
    pub fn iops(&self, window: SimDuration) -> u64 {
        (u128::from(self.ops) * 1_000_000_000_000u128 / u128::from(window.as_picos())) as u64
    }

    /// Cache hit fraction in basis points (10000 = all hits); 0 when the
    /// window saw no cache traffic.
    pub fn cache_hit_bp(&self) -> u64 {
        let total = self.cache_hits + self.cache_misses;
        (self.cache_hits * 10_000).checked_div(total).unwrap_or(0)
    }
}

/// Windowed telemetry collector. Starts disabled (every record method is
/// an early return on one `bool`); [`MetricsHub::new`] turns it on.
#[derive(Debug, Clone)]
pub struct MetricsHub {
    enabled: bool,
    window_ps: u64,
    shard: u32,
    primed: bool,
    base: MetricsSnapshot,
    end_ps: u64,
    frames: Vec<MetricsFrame>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub::disabled()
    }
}

impl MetricsHub {
    /// A disabled hub: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        MetricsHub {
            enabled: false,
            window_ps: u64::MAX,
            shard: 0,
            primed: false,
            base: MetricsSnapshot::default(),
            end_ps: 0,
            frames: Vec::new(),
        }
    }

    /// An enabled hub with the given window. Windows shorter than 1 ns are
    /// clamped up: frame storage is dense in window index, so a picosecond
    /// window over a millisecond run would allocate a billion frames.
    pub fn new(window: SimDuration) -> Self {
        let mut hub = MetricsHub::disabled();
        hub.enabled = true;
        hub.window_ps = window.as_picos().max(1_000);
        hub
    }

    /// Whether this hub is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_picos(self.window_ps)
    }

    /// Tags the hub with the shard (channel) it observes.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// The shard (channel) this hub observes; 0 for single-system runs.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Latest sim time this hub has seen (picoseconds).
    pub fn end_ps(&self) -> u64 {
        self.end_ps
    }

    /// The frames collected so far, one per window, index-contiguous from
    /// window 0 (quiet windows are present but empty).
    pub fn frames(&self) -> &[MetricsFrame] {
        &self.frames
    }

    fn frame_at(&mut self, at_ps: u64) -> &mut MetricsFrame {
        let idx = at_ps / self.window_ps;
        while self.frames.len() <= idx as usize {
            let index = self.frames.len() as u64;
            self.frames.push(MetricsFrame {
                index,
                ..MetricsFrame::default()
            });
        }
        self.end_ps = self.end_ps.max(at_ps);
        &mut self.frames[idx as usize]
    }

    /// Establishes the delta baseline without attributing anything — call
    /// once at run start so totals accumulated before the run (preload,
    /// a previous job on the same stack) don't pollute window 0.
    pub fn prime(&mut self, snap: &MetricsSnapshot) {
        if !self.enabled || self.primed {
            return;
        }
        self.base = *snap;
        self.primed = true;
    }

    /// Attributes the counter deltas since the previous sample to the
    /// window containing `now` and stamps the gauges as that window's
    /// closing values. The first call primes the baseline (see
    /// [`MetricsHub::prime`]).
    #[inline]
    pub fn sample(&mut self, now: SimTime, snap: &MetricsSnapshot) {
        if !self.enabled {
            return;
        }
        if !self.primed {
            self.base = *snap;
            self.primed = true;
        }
        let base = self.base;
        let f = self.frame_at(now.as_picos());
        f.cache_hits += snap.cache_hits - base.cache_hits;
        f.cache_misses += snap.cache_misses - base.cache_misses;
        f.cache_dirty_evicts += snap.cache_dirty_evicts - base.cache_dirty_evicts;
        f.gc_cycles += snap.gc_cycles - base.gc_cycles;
        f.energy_pj += snap.energy_pj - base.energy_pj;
        f.wear_migrations += snap.wear_migrations - base.wear_migrations;
        f.blocks_retired += snap.blocks_retired - base.blocks_retired;
        f.queue_depth = snap.queue_depth;
        f.cache_dirty = snap.cache_dirty;
        f.cache_len = snap.cache_len;
        f.free_blocks = snap.free_blocks;
        f.wear_spread = snap.wear_spread;
        self.base = *snap;
    }

    /// Records one completed host op: routed by completion time, so
    /// merging per-window histograms reproduces the whole-run histogram.
    #[inline]
    pub fn observe_latency(&mut self, completed_at: SimTime, latency: SimDuration) {
        if !self.enabled {
            return;
        }
        let f = self.frame_at(completed_at.as_picos());
        f.ops += 1;
        f.lat.record(latency);
    }

    /// Counts one completed op without a latency (used by shard hubs in a
    /// multi-channel device, where issue→complete latency is only known
    /// at the coordinator).
    #[inline]
    pub fn note_op(&mut self, completed_at: SimTime) {
        if !self.enabled {
            return;
        }
        self.frame_at(completed_at.as_picos()).ops += 1;
    }

    /// Extends the frame vector to cover `now`, so a run that went quiet
    /// still closes with `floor(end/W) + 1` frames.
    pub fn touch(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.frame_at(now.as_picos());
    }

    /// All per-window latency histograms merged into one.
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for f in &self.frames {
            h.merge(&f.lat);
        }
        h
    }
}

/// A complete run's telemetry: device-level frames (what SLOs are judged
/// on) plus optional per-shard frame lanes for multi-channel devices.
#[derive(Debug, Clone)]
pub struct MetricsSeries {
    /// Window length in picoseconds.
    pub window_ps: u64,
    /// Number of shards that contributed (1 for single-system runs).
    pub shards: u32,
    /// Latest sim time any contributing hub saw, picoseconds.
    pub end_ps: u64,
    /// Device-level frames, index-contiguous from window 0.
    pub device: Vec<MetricsFrame>,
    /// Per-shard frames (`per_shard[s]` = shard `s`), empty when the run
    /// had a single shard.
    pub per_shard: Vec<Vec<MetricsFrame>>,
}

/// Pads `frames` with empty frames until it has `len` entries.
fn pad_frames(frames: &mut Vec<MetricsFrame>, len: usize) {
    while frames.len() < len {
        let index = frames.len() as u64;
        frames.push(MetricsFrame {
            index,
            ..MetricsFrame::default()
        });
    }
}

impl MetricsSeries {
    /// A series from a single-system run: the one hub's frames are the
    /// device frames.
    pub fn from_hub(hub: &MetricsHub) -> MetricsSeries {
        MetricsSeries {
            window_ps: hub.window_ps,
            shards: 1,
            end_ps: hub.end_ps,
            device: hub.frames.clone(),
            per_shard: Vec::new(),
        }
    }

    /// A series from a multi-channel run: `device_hub` carries host-op
    /// latencies observed at the coordinator; `shard_hubs[s]` carries
    /// shard `s`'s counters and gauges. Device frames take latencies from
    /// the coordinator and sum counters (and gauges, which are per-shard
    /// quantities like queue depth) across shards.
    pub fn from_shards(device_hub: &MetricsHub, shard_hubs: &[&MetricsHub]) -> MetricsSeries {
        let window_ps = device_hub.window_ps;
        let mut end_ps = device_hub.end_ps;
        let mut len = device_hub.frames.len();
        for h in shard_hubs {
            debug_assert_eq!(h.window_ps, window_ps, "shard hubs must share the window");
            end_ps = end_ps.max(h.end_ps);
            len = len.max(h.frames.len());
        }
        let mut device = device_hub.frames.clone();
        pad_frames(&mut device, len);
        let mut per_shard = Vec::with_capacity(shard_hubs.len());
        for h in shard_hubs {
            let mut frames = h.frames.clone();
            pad_frames(&mut frames, len);
            for (d, s) in device.iter_mut().zip(frames.iter()) {
                d.cache_hits += s.cache_hits;
                d.cache_misses += s.cache_misses;
                d.cache_dirty_evicts += s.cache_dirty_evicts;
                d.gc_cycles += s.gc_cycles;
                d.energy_pj += s.energy_pj;
                d.wear_migrations += s.wear_migrations;
                d.blocks_retired += s.blocks_retired;
                d.queue_depth += s.queue_depth;
                d.cache_dirty += s.cache_dirty;
                d.cache_len += s.cache_len;
                d.free_blocks += s.free_blocks;
                d.wear_spread = d.wear_spread.max(s.wear_spread);
            }
            per_shard.push(frames);
        }
        MetricsSeries {
            window_ps,
            shards: shard_hubs.len().max(1) as u32,
            end_ps,
            device,
            per_shard,
        }
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_picos(self.window_ps)
    }

    /// All device-frame latency histograms merged into one.
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for f in &self.device {
            h.merge(&f.lat);
        }
        h
    }

    /// Renders the series (plus SLO verdicts) as `babol-metrics-v1`
    /// line-JSON: a header line, one line per device frame (`"shard":-1`),
    /// one line per shard frame, one line per SLO verdict, and a footer.
    /// Every value is an integer or a comma-free string, so the flat
    /// parser in this crate reads it back without a JSON library, and the
    /// bytes are deterministic for a deterministic run.
    pub fn to_json_lines(&self, verdicts: &[SloVerdict]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"schema":"{}","window_ps":{},"shards":{},"frames":{}}}"#,
            METRICS_SCHEMA,
            self.window_ps,
            self.shards,
            self.device.len()
        );
        for f in &self.device {
            push_frame(&mut out, DEVICE_SHARD, f);
        }
        for (sid, frames) in self.per_shard.iter().enumerate() {
            for f in frames {
                push_frame(&mut out, sid as i64, f);
            }
        }
        for v in verdicts {
            let _ = writeln!(
                out,
                r#"{{"slo":"{}","evaluated":{},"breaches":{},"longest_streak":{},"burn_short_bp":{},"burn_long_bp":{},"ok":{}}}"#,
                v.spec,
                v.evaluated,
                v.breaches,
                v.longest_streak,
                v.burn_short_bp,
                v.burn_long_bp,
                v.ok()
            );
        }
        let _ = writeln!(
            out,
            r#"{{"footer":true,"frames":{},"shards":{},"window_ps":{},"end_ps":{}}}"#,
            self.device.len(),
            self.shards,
            self.window_ps,
            self.end_ps
        );
        out
    }

    /// Writes [`MetricsSeries::to_json_lines`] to `path`.
    pub fn write_json_lines(
        &self,
        path: impl AsRef<Path>,
        verdicts: &[SloVerdict],
    ) -> io::Result<()> {
        std::fs::write(path, self.to_json_lines(verdicts))
    }
}

fn push_frame(out: &mut String, shard: i64, f: &MetricsFrame) {
    let _ = write!(
        out,
        r#"{{"frame":{},"shard":{},"ops":{},"cache_hits":{},"cache_misses":{},"cache_dirty_evicts":{},"gc_cycles":{},"energy_pj":{},"wear_migrations":{},"blocks_retired":{},"qd":{},"cache_dirty":{},"cache_len":{},"free_blocks":{},"wear_spread":{},"lat_count":{},"lat_sum_ps":{},"lat_max_ps":{}"#,
        f.index,
        shard,
        f.ops,
        f.cache_hits,
        f.cache_misses,
        f.cache_dirty_evicts,
        f.gc_cycles,
        f.energy_pj,
        f.wear_migrations,
        f.blocks_retired,
        f.queue_depth,
        f.cache_dirty,
        f.cache_len,
        f.free_blocks,
        f.wear_spread,
        f.lat.count(),
        f.lat.sum_ps(),
        f.lat.max().as_picos()
    );
    // Sparse bucket encoding, space-separated so the value stays a single
    // comma-free token for the flat line parser: "bucket:count ...".
    out.push_str(",\"lat_buckets\":\"");
    let mut first = true;
    for (i, &n) in f.lat.buckets().iter().enumerate() {
        if n != 0 {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{i}:{n}");
            first = false;
        }
    }
    out.push_str("\"}\n");
}

/// A `metrics.jsonl` file read back: the series plus its SLO verdicts.
#[derive(Debug, Clone)]
pub struct ParsedMetrics {
    /// The reassembled series.
    pub series: MetricsSeries,
    /// SLO verdicts from the file, in file order.
    pub verdicts: Vec<SloVerdict>,
}

/// Parses a `babol-metrics-v1` export back (inverse of
/// [`MetricsSeries::to_json_lines`]). Unknown keys are skipped; malformed
/// lines are errors with their line number.
pub fn parse_metrics_lines(text: &str) -> Result<ParsedMetrics, ParseError> {
    let mut window_ps = 0u64;
    let mut shards = 1u32;
    let mut end_ps = 0u64;
    let mut device: Vec<MetricsFrame> = Vec::new();
    let mut per_shard: Vec<Vec<MetricsFrame>> = Vec::new();
    let mut verdicts: Vec<SloVerdict> = Vec::new();
    let mut saw_header = false;
    let mut saw_footer = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |reason: &str| ParseError {
            line: lineno,
            reason: reason.to_string(),
        };
        if line.trim().is_empty() {
            continue;
        }
        if saw_footer {
            return Err(err("record after footer"));
        }
        let fields = fields(line).ok_or_else(|| err("not a flat JSON object"))?;
        let get = |key: &str| fields.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
        let get_u64 = |key: &str| -> Result<u64, ParseError> {
            get(key)
                .ok_or_else(|| err(&format!("missing {key}")))?
                .parse()
                .map_err(|_| err(&format!("bad {key}")))
        };
        if let Some(schema) = get("schema") {
            if schema != format!("\"{METRICS_SCHEMA}\"") {
                return Err(err("unknown metrics schema"));
            }
            window_ps = get_u64("window_ps")?;
            shards = get_u64("shards")? as u32;
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(err("missing babol-metrics-v1 header"));
        }
        if get("footer").is_some() {
            end_ps = get_u64("end_ps")?;
            let frames = get_u64("frames")? as usize;
            if frames != device.len() {
                return Err(err("footer frame count disagrees with device frames"));
            }
            saw_footer = true;
            continue;
        }
        if let Some(spec) = get("slo") {
            let spec = spec
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err("slo spec not a string"))?;
            let spec = SloSpec::parse(spec).map_err(|e| err(&e))?;
            verdicts.push(SloVerdict {
                spec,
                evaluated: get_u64("evaluated")?,
                breaches: get_u64("breaches")?,
                longest_streak: get_u64("longest_streak")?,
                burn_short_bp: get_u64("burn_short_bp")?,
                burn_long_bp: get_u64("burn_long_bp")?,
            });
            continue;
        }
        // A frame row.
        let shard: i64 = get("shard")
            .ok_or_else(|| err("missing shard"))?
            .parse()
            .map_err(|_| err("bad shard"))?;
        let mut f = MetricsFrame {
            index: get_u64("frame")?,
            ops: get_u64("ops")?,
            cache_hits: get_u64("cache_hits")?,
            cache_misses: get_u64("cache_misses")?,
            cache_dirty_evicts: get_u64("cache_dirty_evicts")?,
            gc_cycles: get_u64("gc_cycles")?,
            energy_pj: get_u64("energy_pj")?,
            wear_migrations: get_u64("wear_migrations")?,
            blocks_retired: get_u64("blocks_retired")?,
            queue_depth: get_u64("qd")? as u32,
            cache_dirty: get_u64("cache_dirty")? as u32,
            cache_len: get_u64("cache_len")? as u32,
            free_blocks: get_u64("free_blocks")? as u32,
            wear_spread: get_u64("wear_spread")? as u32,
            lat: Histogram::new(),
        };
        let buckets = get("lat_buckets")
            .and_then(|v| v.strip_prefix('"'))
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| err("missing lat_buckets"))?;
        let max_ps = get_u64("lat_max_ps")?;
        for tok in buckets.split(' ').filter(|t| !t.is_empty()) {
            let (b, n) = tok.split_once(':').ok_or_else(|| err("bad bucket token"))?;
            let b: usize = b.parse().map_err(|_| err("bad bucket index"))?;
            let n: u64 = n.parse().map_err(|_| err("bad bucket count"))?;
            f.lat
                .load_bucket(b, n)
                .map_err(|_| err("bucket index out of range"))?;
        }
        f.lat
            .load_summary(
                get_u64("lat_count")?,
                u128::from(get_u64("lat_sum_ps")?),
                max_ps,
            )
            .map_err(|_| err("bucket counts disagree with lat_count"))?;
        if shard == DEVICE_SHARD {
            if f.index as usize != device.len() {
                return Err(err("device frames out of order"));
            }
            device.push(f);
        } else {
            let sid = usize::try_from(shard).map_err(|_| err("bad shard"))?;
            while per_shard.len() <= sid {
                per_shard.push(Vec::new());
            }
            if f.index as usize != per_shard[sid].len() {
                return Err(err("shard frames out of order"));
            }
            per_shard[sid].push(f);
        }
    }
    if !saw_header {
        return Err(ParseError {
            line: 1,
            reason: "empty metrics file".to_string(),
        });
    }
    if !saw_footer {
        return Err(ParseError {
            line: text.lines().count().max(1),
            reason: "missing metrics footer".to_string(),
        });
    }
    Ok(ParsedMetrics {
        series: MetricsSeries {
            window_ps,
            shards,
            end_ps,
            device,
            per_shard,
        },
        verdicts,
    })
}

/// Sparkline glyphs, dimmest to brightest.
const SPARK: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Maximum cells in one dashboard lane; longer series downsample.
const LANE_WIDTH: usize = 64;

/// Downsamples `values` to at most [`LANE_WIDTH`] cells. `peak` folds the
/// members of one cell together (max for gauges, sum would distort rates
/// across uneven cells, so max it is for everything).
fn lane_cells(values: &[u64]) -> Vec<u64> {
    if values.is_empty() {
        return Vec::new();
    }
    let group = values.len().div_ceil(LANE_WIDTH);
    values
        .chunks(group)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect()
}

/// Renders one sparkline lane, normalized to the series maximum.
fn sparkline(values: &[u64]) -> String {
    let cells = lane_cells(values);
    let max = cells.iter().copied().max().unwrap_or(0);
    cells
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK[0]
            } else {
                // Nonzero values always render at least the dimmest ink.
                let level =
                    (u128::from(v) * (SPARK.len() as u128 - 1)).div_ceil(u128::from(max)) as usize;
                SPARK[level.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// Downsamples per-frame marker chars (`!`/`.`/space) to the lane width;
/// a breach anywhere in a cell marks the whole cell.
fn marker_lane(marks: &[char]) -> String {
    if marks.is_empty() {
        return String::new();
    }
    let group = marks.len().div_ceil(LANE_WIDTH);
    marks
        .chunks(group)
        .map(|c| {
            if c.contains(&'!') {
                '!'
            } else if c.contains(&'.') {
                '.'
            } else {
                ' '
            }
        })
        .collect()
}

fn fmt_us(ps: u64) -> String {
    format!("{:.1}us", ps as f64 / 1e6)
}

/// Renders the ASCII dashboard: one sparkline lane per metric over
/// sim-time, SLO verdicts with per-window breach markers, and per-shard
/// channel-activity lanes for multi-channel runs.
pub fn render_metrics_dashboard(series: &MetricsSeries, verdicts: &[SloVerdict]) -> String {
    let mut out = String::new();
    let w = series.window_ps;
    let n = series.device.len();
    let _ = writeln!(
        out,
        "== metrics dashboard ({} frames x {} window, {} shard{}) ==",
        n,
        fmt_us(w),
        series.shards,
        if series.shards == 1 { "" } else { "s" }
    );
    if n == 0 {
        out.push_str("(no frames)\n");
        return out;
    }
    let lane = |out: &mut String, label: &str, values: &[u64], note: String| {
        let _ = writeln!(out, "{label:<11}[{}]  {note}", sparkline(values));
    };
    let ops: Vec<u64> = series.device.iter().map(|f| f.ops).collect();
    let peak_iops = series
        .device
        .iter()
        .map(|f| f.iops(series.window()))
        .max()
        .unwrap_or(0);
    lane(&mut out, "ops", &ops, format!("peak {peak_iops} IOPS"));
    let p99: Vec<u64> = series
        .device
        .iter()
        .map(|f| f.lat.percentile(99.0).as_picos())
        .collect();
    let worst = p99.iter().copied().max().unwrap_or(0);
    lane(
        &mut out,
        "p99 lat",
        &p99,
        format!("worst {}", fmt_us(worst)),
    );
    let qd: Vec<u64> = series
        .device
        .iter()
        .map(|f| u64::from(f.queue_depth))
        .collect();
    let max_qd = qd.iter().copied().max().unwrap_or(0);
    lane(&mut out, "queue", &qd, format!("max {max_qd}"));
    let hit: Vec<u64> = series.device.iter().map(|f| f.cache_hit_bp()).collect();
    if hit.iter().any(|&v| v != 0) {
        let best = hit.iter().copied().max().unwrap_or(0);
        lane(
            &mut out,
            "cache hit",
            &hit,
            format!("best {}.{:02}%", best / 100, best % 100),
        );
    }
    let gc: Vec<u64> = series.device.iter().map(|f| f.gc_cycles).collect();
    let gc_total: u64 = gc.iter().sum();
    if gc_total != 0 {
        lane(&mut out, "gc", &gc, format!("total {gc_total} cycles"));
    }
    let dirty: Vec<u64> = series
        .device
        .iter()
        .map(|f| u64::from(f.cache_dirty))
        .collect();
    if dirty.iter().any(|&v| v != 0) {
        let peak = dirty.iter().copied().max().unwrap_or(0);
        lane(&mut out, "dirty pages", &dirty, format!("peak {peak}"));
    }
    let energy: Vec<u64> = series.device.iter().map(|f| f.energy_pj).collect();
    let total_pj: u64 = energy.iter().sum();
    lane(
        &mut out,
        "energy",
        &energy,
        format!("total {:.3} uJ", total_pj as f64 / 1e6),
    );
    let wear: Vec<u64> = series
        .device
        .iter()
        .map(|f| u64::from(f.wear_spread))
        .collect();
    if wear.iter().any(|&v| v != 0) {
        let peak = wear.iter().copied().max().unwrap_or(0);
        lane(&mut out, "wear sprd", &wear, format!("peak {peak}"));
    }
    if !verdicts.is_empty() {
        out.push_str("-- slo --\n");
        for v in verdicts {
            let spec = &v.spec;
            let _ = writeln!(
                out,
                "{:<11} {}  breaches {}/{} frames  longest streak {}  burn {}.{:02}%/{}.{:02}% (short/long)",
                spec.to_string(),
                if v.ok() { "OK  " } else { "FAIL" },
                v.breaches,
                v.evaluated,
                v.longest_streak,
                v.burn_short_bp / 100,
                v.burn_short_bp % 100,
                v.burn_long_bp / 100,
                v.burn_long_bp % 100,
            );
            let marks = crate::slo::breach_marks(spec, &series.device, w);
            let _ = writeln!(out, "{:<11}[{}]", "", marker_lane(&marks));
        }
    }
    if !series.per_shard.is_empty() {
        out.push_str("-- shard lanes (ops per window) --\n");
        for (sid, frames) in series.per_shard.iter().enumerate() {
            let ops: Vec<u64> = frames.iter().map(|f| f.ops).collect();
            let total: u64 = ops.iter().sum();
            let label = format!("ch{sid:02}");
            let _ = writeln!(out, "{label:<11}[{}]  {total} ops", sparkline(&ops));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::evaluate_slo;

    fn ps(v: u64) -> SimDuration {
        SimDuration::from_picos(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_picos(v)
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let mut hub = MetricsHub::disabled();
        hub.observe_latency(at(5), ps(10));
        hub.sample(at(5), &MetricsSnapshot::default());
        hub.touch(at(1 << 40));
        assert!(!hub.is_enabled());
        assert!(hub.frames().is_empty());
    }

    #[test]
    fn latencies_route_by_completion_time() {
        let w = 1_000_000u64; // 1 us windows
        let mut hub = MetricsHub::new(ps(w));
        hub.observe_latency(at(10), ps(100));
        hub.observe_latency(at(w + 1), ps(200));
        hub.observe_latency(at(3 * w + 5), ps(300));
        // Out-of-order arrival for an earlier window still lands there.
        hub.observe_latency(at(w + 2), ps(400));
        let frames = hub.frames();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].ops, 1);
        assert_eq!(frames[1].ops, 2);
        assert_eq!(frames[2].ops, 0, "quiet window is present but empty");
        assert_eq!(frames[3].ops, 1);
        assert_eq!(hub.merged_latency().count(), 4);
        assert_eq!(hub.merged_latency().max(), ps(400));
    }

    #[test]
    fn sample_attributes_deltas_and_stamps_gauges() {
        let w = 1_000_000u64;
        let mut hub = MetricsHub::new(ps(w));
        let mut snap = MetricsSnapshot {
            cache_hits: 100, // pre-run total: must not leak into window 0
            energy_pj: 5_000,
            ..MetricsSnapshot::default()
        };
        hub.prime(&snap);
        snap.cache_hits = 110;
        snap.energy_pj = 5_400;
        snap.queue_depth = 4;
        hub.sample(at(10), &snap);
        snap.cache_hits = 115;
        snap.energy_pj = 6_000;
        snap.queue_depth = 2;
        hub.sample(at(w + 10), &snap);
        let frames = hub.frames();
        assert_eq!(frames[0].cache_hits, 10);
        assert_eq!(frames[0].energy_pj, 400);
        assert_eq!(frames[0].queue_depth, 4);
        assert_eq!(frames[1].cache_hits, 5);
        assert_eq!(frames[1].energy_pj, 600);
        assert_eq!(frames[1].queue_depth, 2);
    }

    #[test]
    fn touch_extends_to_quiet_end_of_run() {
        let w = 1_000_000u64;
        let mut hub = MetricsHub::new(ps(w));
        hub.observe_latency(at(10), ps(1));
        hub.touch(at(5 * w + 1));
        assert_eq!(hub.frames().len(), 6);
        assert_eq!(hub.end_ps(), 5 * w + 1);
    }

    #[test]
    fn tiny_windows_clamp_to_a_nanosecond() {
        let hub = MetricsHub::new(ps(1));
        assert_eq!(hub.window(), SimDuration::from_nanos(1));
    }

    fn sample_series() -> MetricsSeries {
        let w = 1_000_000u64;
        let mut hub = MetricsHub::new(ps(w));
        let mut snap = MetricsSnapshot::default();
        hub.prime(&snap);
        for i in 0..5u64 {
            hub.observe_latency(at(i * w + 500), ps((i + 1) * 111));
            snap.cache_hits += i;
            snap.cache_misses += 1;
            snap.energy_pj += 1000 * (i + 1);
            snap.gc_cycles += u64::from(i == 3);
            snap.queue_depth = i as u32;
            snap.free_blocks = 40 - i as u32;
            hub.sample(at(i * w + 900), &snap);
        }
        MetricsSeries::from_hub(&hub)
    }

    #[test]
    fn export_parse_roundtrip() {
        let series = sample_series();
        let spec = SloSpec::parse("p99<400ps").unwrap();
        let verdict = evaluate_slo(&spec, &series.device, series.window_ps);
        let text = series.to_json_lines(std::slice::from_ref(&verdict));
        assert!(text.starts_with(r#"{"schema":"babol-metrics-v1","#));
        let parsed = parse_metrics_lines(&text).unwrap();
        assert_eq!(parsed.series.window_ps, series.window_ps);
        assert_eq!(parsed.series.device.len(), series.device.len());
        assert_eq!(parsed.series.end_ps, series.end_ps);
        assert_eq!(parsed.verdicts, vec![verdict]);
        for (a, b) in parsed.series.device.iter().zip(series.device.iter()) {
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.cache_hits, b.cache_hits);
            assert_eq!(a.energy_pj, b.energy_pj);
            assert_eq!(a.queue_depth, b.queue_depth);
            assert_eq!(a.lat.buckets(), b.lat.buckets());
            assert_eq!(a.lat.count(), b.lat.count());
            assert_eq!(a.lat.max(), b.lat.max());
            assert_eq!(a.lat.mean(), b.lat.mean());
        }
        // And the re-export is byte-identical: parse is lossless.
        assert_eq!(
            parsed.series.to_json_lines(&parsed.verdicts),
            text,
            "parse -> export must be a fixed point"
        );
    }

    #[test]
    fn parse_rejects_malformed_files() {
        assert!(parse_metrics_lines("").is_err());
        assert!(parse_metrics_lines(
            "{\"schema\":\"bogus-v9\",\"window_ps\":1,\"shards\":1,\"frames\":0}\n"
        )
        .is_err());
        let series = sample_series();
        let good = series.to_json_lines(&[]);
        // Truncating the footer must fail loudly.
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(parse_metrics_lines(&truncated).is_err());
        // Corrupting a bucket count must fail the count cross-check.
        let bad = good.replace("\"lat_count\":1", "\"lat_count\":7");
        assert!(parse_metrics_lines(&bad).is_err());
    }

    #[test]
    fn multi_shard_series_sums_into_device_frames() {
        let w = 1_000_000u64;
        let mut dev = MetricsHub::new(ps(w));
        let mut s0 = MetricsHub::new(ps(w));
        let mut s1 = MetricsHub::new(ps(w));
        s1.set_shard(1);
        dev.observe_latency(at(100), ps(50));
        dev.observe_latency(at(w + 100), ps(60));
        s0.note_op(at(100));
        s1.note_op(at(w + 100));
        let mut snap = MetricsSnapshot::default();
        s0.prime(&snap);
        snap.energy_pj = 300;
        s0.sample(at(150), &snap);
        let mut snap1 = MetricsSnapshot::default();
        s1.prime(&snap1);
        snap1.energy_pj = 500;
        snap1.queue_depth = 2;
        s1.sample(at(w + 150), &snap1);
        let series = MetricsSeries::from_shards(&dev, &[&s0, &s1]);
        assert_eq!(series.shards, 2);
        assert_eq!(series.device.len(), 2);
        assert_eq!(series.per_shard.len(), 2);
        assert_eq!(series.device[0].energy_pj, 300);
        assert_eq!(series.device[1].energy_pj, 500);
        assert_eq!(series.device[1].queue_depth, 2);
        assert_eq!(series.device[0].ops, 1, "ops come from the device hub");
        assert_eq!(series.per_shard[1][1].ops, 1);
        // Round-trip keeps the shard lanes.
        let parsed = parse_metrics_lines(&series.to_json_lines(&[])).unwrap();
        assert_eq!(parsed.series.per_shard.len(), 2);
        assert_eq!(parsed.series.per_shard[1][1].ops, 1);
    }

    #[test]
    fn dashboard_renders_lanes_markers_and_shards() {
        let series = sample_series();
        let spec = SloSpec::parse("p99<400ps").unwrap();
        let verdict = evaluate_slo(&spec, &series.device, series.window_ps);
        let dash = render_metrics_dashboard(&series, &[verdict]);
        assert!(dash.contains("== metrics dashboard"));
        assert!(dash.contains("ops"));
        assert!(dash.contains("p99 lat"));
        assert!(dash.contains("-- slo --"));
        assert!(dash.contains("p99<400ps"));
        assert!(dash.contains('!'), "breach marker missing:\n{dash}");
        // Multi-shard dashboards grow channel lanes.
        let w = ps(1_000_000);
        let mut dev = MetricsHub::new(w);
        let mut s0 = MetricsHub::new(w);
        dev.observe_latency(at(5), ps(10));
        s0.note_op(at(5));
        let multi = MetricsSeries::from_shards(&dev, &[&s0]);
        let dash = render_metrics_dashboard(&multi, &[]);
        assert!(dash.contains("-- shard lanes"));
        assert!(dash.contains("ch00"));
    }

    #[test]
    fn sparkline_is_width_bounded_and_deterministic() {
        let values: Vec<u64> = (0..500).map(|i| i % 97).collect();
        let a = sparkline(&values);
        let b = sparkline(&values);
        assert_eq!(a, b);
        assert!(a.chars().count() <= LANE_WIDTH);
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ", "all-zero lane renders blank");
    }
}

//! Sim-time progress watchdog.
//!
//! A discrete-event simulation has two failure shapes: the event queue
//! runs dry with work outstanding (caught by the engine's deadlock panic),
//! and a *live-lock* — events keep flowing (timers rescheduling, pollers
//! polling) but no operation ever completes, so the sim spins forever
//! looking perfectly healthy. [`Watchdog`] catches the second shape: the
//! driver notes progress whenever an op completes, and the engine checks
//! the elapsed sim-time since the last note against a budget. When the
//! budget is exceeded the caller assembles a diagnostic (oldest pending
//! op, queue depths, per-component last-activity from the tracer) and
//! panics loudly instead of spinning silently.
//!
//! The watchdog measures *simulated* time, so it is deterministic: the
//! same run either always fires or never fires, independent of host
//! speed. Budgets are generous by design — a watchdog that fires on a
//! legitimate GC storm is worse than none — and configurable per driver.

use crate::time::{SimDuration, SimTime};

/// A sim-time progress monitor. See the module docs.
#[derive(Debug, Clone)]
pub struct Watchdog {
    budget: SimDuration,
    last_progress: SimTime,
    enabled: bool,
}

impl Watchdog {
    /// A watchdog that fires when `budget` of sim-time passes without
    /// [`Watchdog::note_progress`]. The progress clock starts at epoch;
    /// call [`Watchdog::arm_at`] when the measured run actually begins.
    pub fn new(budget: SimDuration) -> Self {
        Watchdog {
            budget,
            last_progress: SimTime::ZERO,
            enabled: true,
        }
    }

    /// A watchdog that never fires.
    pub fn disarmed() -> Self {
        Watchdog {
            budget: SimDuration::ZERO,
            last_progress: SimTime::ZERO,
            enabled: false,
        }
    }

    /// Whether the watchdog is armed.
    pub fn is_armed(&self) -> bool {
        self.enabled
    }

    /// The configured budget.
    pub fn budget(&self) -> SimDuration {
        self.budget
    }

    /// (Re)starts the progress clock at `now` without counting progress —
    /// used when a run begins at a nonzero sim time.
    pub fn arm_at(&mut self, now: SimTime) {
        self.last_progress = now;
    }

    /// Records that forward progress happened at `now`.
    #[inline]
    pub fn note_progress(&mut self, now: SimTime) {
        self.last_progress = self.last_progress.max(now);
    }

    /// Sim time since the last noted progress.
    pub fn stalled_for(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.last_progress)
    }

    /// Whether the budget is exhausted at `now`. `>` not `>=`: a run
    /// whose ops complete exactly one budget apart is slow, not stuck.
    #[inline]
    pub fn is_stalled(&self, now: SimTime) -> bool {
        self.enabled && self.stalled_for(now) > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn fires_only_after_budget_without_progress() {
        let mut wd = Watchdog::new(SimDuration::from_micros(100));
        assert!(!wd.is_stalled(t(100)), "exactly at budget is not stalled");
        assert!(wd.is_stalled(t(101)));
        wd.note_progress(t(90));
        assert!(!wd.is_stalled(t(190)));
        assert!(wd.is_stalled(t(191)));
        assert_eq!(wd.stalled_for(t(190)), SimDuration::from_micros(100));
    }

    #[test]
    fn progress_never_moves_backwards() {
        let mut wd = Watchdog::new(SimDuration::from_micros(10));
        wd.note_progress(t(50));
        wd.note_progress(t(20)); // out-of-order note must not rewind
        assert!(!wd.is_stalled(t(60)));
        assert!(wd.is_stalled(t(61)));
    }

    #[test]
    fn arm_at_restarts_the_clock() {
        let mut wd = Watchdog::new(SimDuration::from_micros(10));
        wd.arm_at(t(1000));
        assert!(!wd.is_stalled(t(1010)));
        assert!(wd.is_stalled(t(1011)));
    }

    #[test]
    fn disarmed_never_fires() {
        let wd = Watchdog::disarmed();
        assert!(!wd.is_stalled(t(u64::MAX / 2_000_000)));
        assert!(!wd.is_armed());
    }
}

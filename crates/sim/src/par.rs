//! Conservative parallel discrete-event simulation over per-channel shards.
//!
//! The BABOL reproduction models one flash channel per [`crate::EventQueue`];
//! a whole-device simulation (8–16 channels, Amber/SimpleSSD scale) runs one
//! queue per channel and advances them concurrently. This module provides the
//! generic kernel: a [`Shard`] is an isolated simulation domain with its own
//! clock and event queue, and a [`ShardPool`] steps every shard in windows
//! bounded by a conservative time barrier.
//!
//! # Barrier protocol
//!
//! Shards only interact through the coordinator: messages delivered at a
//! barrier time, and outputs harvested at the end of each window. Each round:
//!
//! 1. The coordinator computes `earliest` — the minimum of every shard's
//!    next-event time and, if any delivery is queued, the barrier itself.
//! 2. The horizon is `earliest + window`. The window is a fixed model
//!    parameter: it never depends on thread count, so the set of events each
//!    shard processes per round is identical whether the round runs on one
//!    worker or eight.
//! 3. Every shard receives its queued messages stamped at the barrier time
//!    (all events before the barrier are already processed, so the stamp
//!    never rewrites history), then runs until its next event is at or past
//!    the horizon.
//! 4. Outputs are merged in shard-id order. Within a shard outputs are
//!    already in simulated-time order, so a stable merge keyed by
//!    `(time, shard, emission index)` gives one global deterministic order.
//! 5. The barrier advances to the horizon.
//!
//! A shard may *overshoot* the horizon when it performs blocking internal
//! work (foreground GC runs events inline until a relocation completes).
//! That is safe: the shard's own clock is private, deliveries clamp forward
//! (`now = max(now, barrier)`), and the merge key still orders its outputs
//! globally. Overshoot changes nothing across thread counts because it is a
//! property of the shard's event stream, not of scheduling.
//!
//! # Determinism
//!
//! With `threads <= 1` the pool keeps every shard on the caller's thread and
//! steps them in shard-id order — this *defines* the reference order. With
//! more threads, shards are pinned to workers (`shard % threads`), constructed
//! inside their worker (shards need not be `Send`; only messages, outputs and
//! ctors are), and every round's results are re-assembled by shard id before
//! the coordinator looks at them. Arrival order never reaches the model, so
//! any thread count reproduces the single-thread stream bit for bit.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::time::SimTime;

/// One isolated simulation domain driven by a [`ShardPool`].
///
/// Implementations own their full state (event queue, clock, model). They
/// do not need to be `Send`: each shard is constructed inside the worker
/// thread that will drive it and never moves again.
pub trait Shard: 'static {
    /// Message type delivered into the shard at a barrier (host commands,
    /// cross-shard notifications).
    type In: Send + 'static;
    /// Output record harvested from the shard (completions). Outputs must
    /// carry their simulated emission time for the deterministic merge.
    type Out: Send + 'static;
    /// Final state summary returned by [`Shard::finish`].
    type Digest: Send + 'static;

    /// Accepts one cross-shard message stamped at barrier time `at`.
    /// The shard must clamp its clock forward (`now = max(now, at)`) and
    /// must not run events here; work happens in [`Shard::run_until`].
    fn deliver(&mut self, at: SimTime, msg: Self::In);

    /// Runs the shard until its next pending event is at or past `horizon`
    /// (or the queue is empty), appending outputs in emission order.
    fn run_until(&mut self, horizon: SimTime, out: &mut Vec<Self::Out>);

    /// Earliest pending event, if any. Drives the coordinator's horizon.
    fn next_event_time(&self) -> Option<SimTime>;

    /// The shard's local clock.
    fn now(&self) -> SimTime;

    /// Events processed since construction (monotonic; feeds the event-rate
    /// benchmarks).
    fn events_processed(&self) -> u64;

    /// Consumes the shard, returning its final digest.
    fn finish(self) -> Self::Digest;
}

/// Constructor for one shard, run on the worker thread that will own it.
pub type ShardCtor<S> = Box<dyn FnOnce() -> S + Send>;

/// Per-shard result of one barrier window.
#[derive(Debug)]
pub struct StepOutcome<O> {
    /// Outputs emitted during the window, in emission order.
    pub out: Vec<O>,
    /// The shard's next pending event after the window.
    pub next_event: Option<SimTime>,
    /// The shard's clock after the window (may exceed the horizon when the
    /// shard ran blocking internal work).
    pub now: SimTime,
    /// Total events the shard has processed since construction.
    pub events_processed: u64,
}

enum Cmd<I> {
    /// Run one window: deliver `inboxes[i]` to the worker's i-th shard at
    /// `deliver_at`, then run each shard to `horizon`.
    Step {
        deliver_at: SimTime,
        horizon: SimTime,
        inboxes: Vec<Vec<I>>,
    },
    Finish,
}

enum Reply<O, D> {
    /// `(global shard id, outcome)` for each shard the worker owns.
    Stepped(Vec<(usize, StepOutcome<O>)>),
    Finished(Vec<(usize, D)>),
    /// A shard panicked; the payload is the rendered panic message.
    Panicked(String),
}

struct Worker<S: Shard> {
    cmd: mpsc::Sender<Cmd<S::In>>,
    handle: Option<JoinHandle<()>>,
}

enum Backend<S: Shard> {
    /// `threads <= 1`: shards live on the caller's thread, stepped in
    /// shard-id order. This is the reference order every other mode must
    /// reproduce.
    Inline(Vec<S>),
    Threaded {
        workers: Vec<Worker<S>>,
        replies: mpsc::Receiver<Reply<S::Out, S::Digest>>,
        shards: usize,
    },
}

/// A fixed-size pool driving [`Shard`]s under the conservative barrier
/// protocol. Built on std threads only; see the module docs for the
/// determinism argument.
pub struct ShardPool<S: Shard> {
    backend: Backend<S>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard worker panicked".to_string()
    }
}

impl<S: Shard> ShardPool<S> {
    /// Builds the pool. Each constructor runs exactly once, on the thread
    /// that will own the shard; shard `i` is pinned to worker `i % threads`.
    /// `threads <= 1` (or a single shard) selects the inline backend.
    pub fn new(ctors: Vec<ShardCtor<S>>, threads: usize) -> Self {
        assert!(!ctors.is_empty(), "a shard pool needs at least one shard");
        let shards = ctors.len();
        let threads = threads.min(shards);
        if threads <= 1 {
            let built = ctors.into_iter().map(|c| c()).collect();
            return ShardPool {
                backend: Backend::Inline(built),
            };
        }

        let (reply_tx, replies) = mpsc::channel();
        let mut slots: Vec<Vec<(usize, ShardCtor<S>)>> = (0..threads).map(|_| Vec::new()).collect();
        for (id, ctor) in ctors.into_iter().enumerate() {
            slots[id % threads].push((id, ctor));
        }
        let workers = slots
            .into_iter()
            .enumerate()
            .map(|(w, ctors)| {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<S::In>>();
                let reply_tx = reply_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("babol-shard-{w}"))
                    .spawn(move || worker_main::<S>(ctors, cmd_rx, reply_tx))
                    .expect("spawning shard worker");
                Worker {
                    cmd: cmd_tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool {
            backend: Backend::Threaded {
                workers,
                replies,
                shards,
            },
        }
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        match &self.backend {
            Backend::Inline(s) => s.len(),
            Backend::Threaded { shards, .. } => *shards,
        }
    }

    /// Runs one barrier window on every shard: deliver `inboxes[i]` to shard
    /// `i` at `deliver_at`, run each shard to `horizon`, and return outcomes
    /// indexed by shard id. `inboxes` must have one entry per shard.
    pub fn step(
        &mut self,
        deliver_at: SimTime,
        horizon: SimTime,
        mut inboxes: Vec<Vec<S::In>>,
    ) -> Vec<StepOutcome<S::Out>> {
        assert_eq!(inboxes.len(), self.shards(), "one inbox per shard");
        match &mut self.backend {
            Backend::Inline(shards) => shards
                .iter_mut()
                .zip(inboxes.drain(..))
                .map(|(shard, inbox)| run_window(shard, deliver_at, horizon, inbox))
                .collect(),
            Backend::Threaded {
                workers,
                replies,
                shards,
            } => {
                let threads = workers.len();
                let mut per_worker: Vec<Vec<Vec<S::In>>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (id, inbox) in inboxes.drain(..).enumerate() {
                    per_worker[id % threads].push(inbox);
                }
                for (worker, inboxes) in workers.iter().zip(per_worker) {
                    worker
                        .cmd
                        .send(Cmd::Step {
                            deliver_at,
                            horizon,
                            inboxes,
                        })
                        .expect("shard worker hung up");
                }
                let mut outcomes: Vec<Option<StepOutcome<S::Out>>> =
                    (0..*shards).map(|_| None).collect();
                for _ in 0..threads {
                    match replies.recv().expect("shard worker hung up") {
                        Reply::Stepped(list) => {
                            for (id, outcome) in list {
                                outcomes[id] = Some(outcome);
                            }
                        }
                        Reply::Panicked(msg) => panic!("{msg}"),
                        Reply::Finished(_) => unreachable!("finish reply during step"),
                    }
                }
                outcomes
                    .into_iter()
                    .map(|o| o.expect("worker skipped a shard"))
                    .collect()
            }
        }
    }

    /// Shuts the pool down, returning every shard's digest in shard-id order.
    pub fn finish(mut self) -> Vec<S::Digest> {
        match std::mem::replace(&mut self.backend, Backend::Inline(Vec::new())) {
            Backend::Inline(shards) => shards.into_iter().map(Shard::finish).collect(),
            Backend::Threaded {
                mut workers,
                replies,
                shards,
            } => {
                for worker in &workers {
                    worker.cmd.send(Cmd::Finish).expect("shard worker hung up");
                }
                let mut digests: Vec<Option<S::Digest>> = (0..shards).map(|_| None).collect();
                for _ in 0..workers.len() {
                    match replies.recv().expect("shard worker hung up") {
                        Reply::Finished(list) => {
                            for (id, digest) in list {
                                digests[id] = Some(digest);
                            }
                        }
                        Reply::Panicked(msg) => panic!("{msg}"),
                        Reply::Stepped(_) => unreachable!("step reply during finish"),
                    }
                }
                for worker in &mut workers {
                    if let Some(handle) = worker.handle.take() {
                        if let Err(payload) = handle.join() {
                            resume_unwind(payload);
                        }
                    }
                }
                digests
                    .into_iter()
                    .map(|d| d.expect("worker dropped a digest"))
                    .collect()
            }
        }
    }
}

impl<S: Shard> Drop for ShardPool<S> {
    fn drop(&mut self) {
        if let Backend::Threaded { workers, .. } = &mut self.backend {
            // Closing the command channels makes workers drop their shards
            // and exit; join so no thread outlives the pool. Panics were
            // either already surfaced through a reply or are repeated here.
            for worker in workers.iter_mut() {
                let (closed, _) = mpsc::channel();
                worker.cmd = closed;
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

/// Delivers one inbox and runs one window on one shard.
fn run_window<S: Shard>(
    shard: &mut S,
    deliver_at: SimTime,
    horizon: SimTime,
    inbox: Vec<S::In>,
) -> StepOutcome<S::Out> {
    let mut out = Vec::new();
    for msg in inbox {
        shard.deliver(deliver_at, msg);
    }
    shard.run_until(horizon, &mut out);
    StepOutcome {
        out,
        next_event: shard.next_event_time(),
        now: shard.now(),
        events_processed: shard.events_processed(),
    }
}

fn worker_main<S: Shard>(
    ctors: Vec<(usize, ShardCtor<S>)>,
    cmd_rx: mpsc::Receiver<Cmd<S::In>>,
    reply_tx: mpsc::Sender<Reply<S::Out, S::Digest>>,
) {
    // Construct in-thread: shards never cross a thread boundary.
    let built = catch_unwind(AssertUnwindSafe(|| {
        ctors
            .into_iter()
            .map(|(id, ctor)| (id, ctor()))
            .collect::<Vec<(usize, S)>>()
    }));
    let mut shards = match built {
        Ok(shards) => shards,
        Err(payload) => {
            let _ = reply_tx.send(Reply::Panicked(panic_message(payload)));
            return;
        }
    };
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Cmd::Step {
                deliver_at,
                horizon,
                inboxes,
            } => {
                let reply = catch_unwind(AssertUnwindSafe(|| {
                    shards
                        .iter_mut()
                        .zip(inboxes)
                        .map(|((id, shard), inbox)| {
                            (*id, run_window(shard, deliver_at, horizon, inbox))
                        })
                        .collect::<Vec<_>>()
                }));
                let reply = match reply {
                    Ok(list) => Reply::Stepped(list),
                    Err(payload) => {
                        let _ = reply_tx.send(Reply::Panicked(panic_message(payload)));
                        return;
                    }
                };
                if reply_tx.send(reply).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let digests = shards
                    .drain(..)
                    .map(|(id, shard)| (id, shard.finish()))
                    .collect();
                let _ = reply_tx.send(Reply::Finished(digests));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::time::SimDuration;

    /// A minimal shard: delivered numbers become events `delay` later; each
    /// popped event emits `(time, value)` and schedules a decremented echo
    /// until the value reaches zero.
    struct Echo {
        id: u64,
        now: SimTime,
        events: EventQueue<u64>,
        processed: u64,
        delay: SimDuration,
    }

    impl Echo {
        fn new(id: u64, delay_ps: u64) -> Self {
            Echo {
                id,
                now: SimTime::ZERO,
                events: EventQueue::new(),
                processed: 0,
                delay: SimDuration::from_picos(delay_ps),
            }
        }
    }

    impl Shard for Echo {
        type In = u64;
        type Out = (SimTime, u64, u64);
        type Digest = (u64, u64);

        fn deliver(&mut self, at: SimTime, msg: u64) {
            self.now = self.now.max(at);
            self.events.push(self.now + self.delay, msg);
        }
        fn run_until(&mut self, horizon: SimTime, out: &mut Vec<Self::Out>) {
            while let Some(t) = self.events.peek_time() {
                if t >= horizon {
                    break;
                }
                let (at, v) = self.events.pop().unwrap();
                self.now = at;
                self.processed += 1;
                out.push((at, self.id, v));
                if v > 0 {
                    self.events.push(at + self.delay, v - 1);
                }
            }
        }
        fn next_event_time(&self) -> Option<SimTime> {
            self.events.peek_time()
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn events_processed(&self) -> u64 {
            self.processed
        }
        fn finish(self) -> (u64, u64) {
            (self.id, self.processed)
        }
    }

    type EchoRun = (Vec<(SimTime, u64, u64)>, Vec<(u64, u64)>);

    fn drive(threads: usize) -> EchoRun {
        let ctors: Vec<ShardCtor<Echo>> = (0..4u64)
            .map(|id| Box::new(move || Echo::new(id, 100 + id * 37)) as ShardCtor<Echo>)
            .collect();
        let mut pool = ShardPool::new(ctors, threads);
        let mut barrier = SimTime::ZERO;
        let window = SimDuration::from_picos(250);
        let mut merged = Vec::new();
        // Seed every shard with a chain, then drain in windows.
        let mut inboxes: Vec<Vec<u64>> = (0..4).map(|i| vec![i + 3]).collect();
        loop {
            let queued = inboxes.iter().any(|i| !i.is_empty());
            let outcomes = pool.step(
                barrier,
                barrier + window,
                std::mem::replace(&mut inboxes, (0..4).map(|_| Vec::new()).collect()),
            );
            let mut round: Vec<(SimTime, u64, u64)> = Vec::new();
            for o in &outcomes {
                round.extend(o.out.iter().copied());
            }
            round.sort_by_key(|&(t, shard, _)| (t, shard));
            merged.extend(round);
            barrier += window;
            if !queued && outcomes.iter().all(|o| o.next_event.is_none()) {
                break;
            }
        }
        (merged, pool.finish())
    }

    #[test]
    fn threaded_pools_reproduce_the_inline_order() {
        let (reference, digests1) = drive(1);
        assert!(!reference.is_empty());
        for threads in [2, 3, 8] {
            let (merged, digests) = drive(threads);
            assert_eq!(merged, reference, "{threads} threads diverged");
            assert_eq!(digests, digests1, "{threads} threads: digests diverged");
        }
    }

    #[test]
    fn digests_count_processed_events() {
        let (merged, digests) = drive(2);
        let total: u64 = digests.iter().map(|&(_, n)| n).sum();
        assert_eq!(total as usize, merged.len());
        assert_eq!(digests.len(), 4);
        assert_eq!(digests[2].0, 2, "digests arrive in shard-id order");
    }

    #[test]
    #[should_panic(expected = "echo shard exploded")]
    fn worker_panics_propagate_to_the_coordinator() {
        struct Bomb;
        impl Shard for Bomb {
            type In = ();
            type Out = ();
            type Digest = ();
            fn deliver(&mut self, _at: SimTime, _msg: ()) {}
            fn run_until(&mut self, _h: SimTime, _o: &mut Vec<()>) {
                panic!("echo shard exploded");
            }
            fn next_event_time(&self) -> Option<SimTime> {
                None
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn events_processed(&self) -> u64 {
                0
            }
            fn finish(self) {}
        }
        let ctors: Vec<ShardCtor<Bomb>> = (0..2)
            .map(|_| Box::new(|| Bomb) as ShardCtor<Bomb>)
            .collect();
        let mut pool = ShardPool::new(ctors, 2);
        pool.step(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_picos(1),
            vec![vec![], vec![]],
        );
    }
}

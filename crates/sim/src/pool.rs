//! A slab buffer pool for page payloads.
//!
//! Every layer of the data path used to clone page contents into a fresh
//! `Vec<u8>` at each boundary (DRAM reads, channel transfers, LUN register
//! slices, staged mailbox writes). [`BufPool`] replaces that with a
//! free-list of page-sized buffers: a producer acquires a [`PageBufMut`],
//! fills it once, and freezes it into a cheaply-cloneable, reference-counted
//! [`PageBuf`] that every consumer reads in place. Dropping the last handle
//! returns the storage to the pool, so a steady-state run performs **zero
//! page-buffer heap allocations after warm-up** — observable through
//! [`PoolStats`] and asserted by the fio allocation test in `babol-ftl`.
//!
//! The free list recycles the whole `Rc` allocation, not just the byte
//! storage: `acquire` → `freeze` → drop is pointer shuffling end to end.
//! (A naive `Rc::new` per freeze would put one hidden malloc/free pair back
//! on every data phase — exactly what the pool exists to remove.)
//!
//! Ownership rules (see DESIGN.md "Performance"):
//!
//! * [`PageBufMut`] is unique and writable; it never aliases.
//! * [`PageBuf`] is shared and immutable; clones are `Rc` bumps.
//! * Buffers keep their capacity across reuse; the free list is LIFO so the
//!   hottest buffer (best cache locality) is handed out next.
//! * A `PageBuf` can also wrap a plain `Vec<u8>` (`From<Vec<u8>>`) with no
//!   pool attached — used by tests and cold paths; it simply frees on drop.
//!
//! The pool is single-threaded (`Rc<RefCell<..>>`), like the simulator.
//!
//! # Examples
//!
//! ```
//! use babol_sim::BufPool;
//!
//! let pool = BufPool::new(4096);
//! let mut w = pool.acquire();
//! w.extend_from_slice(b"page payload");
//! let page = w.freeze();
//! let copy = page.clone(); // Rc bump, no allocation
//! assert_eq!(&*copy, b"page payload");
//! drop((page, copy)); // storage returns to the pool
//! assert_eq!(pool.stats().allocs, 1);
//! let again = pool.acquire(); // reuses the same buffer
//! assert_eq!(pool.stats().allocs, 1);
//! drop(again);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// Allocation-activity counters for a [`BufPool`].
///
/// `allocs` and `grows` together count every heap allocation the pool has
/// performed; in a warmed-up steady state both must stay flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (`acquire` calls).
    pub acquires: u64,
    /// Fresh buffers allocated because the free list was empty.
    pub allocs: u64,
    /// Capacity growths of recycled buffers (a request exceeded the page
    /// size the pool was built with).
    pub grows: u64,
    /// Buffers returned to the free list.
    pub releases: u64,
    /// Buffers currently out of the pool.
    pub in_use: u64,
    /// Maximum simultaneous `in_use` observed.
    pub high_water: u64,
}

impl PoolStats {
    /// Total heap allocations attributable to the pool so far.
    pub fn heap_allocs(&self) -> u64 {
        self.allocs + self.grows
    }
}

#[derive(Debug)]
struct PoolInner {
    /// Default capacity of freshly allocated buffers.
    page_size: usize,
    /// LIFO free list of whole `Rc` husks; buffers keep their capacity
    /// across recycling and the `Rc` box itself is reused.
    free: Vec<Rc<Vec<u8>>>,
    stats: PoolStats,
}

/// A shared, single-threaded free-list of page buffers.
///
/// Cloning a `BufPool` yields another handle to the same pool.
#[derive(Debug, Clone)]
pub struct BufPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl BufPool {
    /// Creates a pool whose fresh buffers are pre-sized to `page_size`.
    pub fn new(page_size: usize) -> Self {
        BufPool {
            inner: Rc::new(RefCell::new(PoolInner {
                page_size,
                free: Vec::new(),
                stats: PoolStats::default(),
            })),
        }
    }

    /// Whether two handles refer to the same underlying pool.
    pub fn same_pool(&self, other: &BufPool) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Takes an empty, writable buffer from the free list (allocating one
    /// only if the list is empty).
    #[inline]
    pub fn acquire(&self) -> PageBufMut {
        let mut inner = self.inner.borrow_mut();
        let page_size = inner.page_size;
        let shared = match inner.free.pop() {
            Some(mut rc) => {
                Rc::get_mut(&mut rc)
                    .expect("free-list husks are unique")
                    .clear();
                rc
            }
            None => {
                inner.stats.allocs += 1;
                Rc::new(Vec::with_capacity(page_size))
            }
        };
        inner.stats.acquires += 1;
        inner.stats.in_use += 1;
        inner.stats.high_water = inner.stats.high_water.max(inner.stats.in_use);
        drop(inner);
        PageBufMut {
            pool: self.clone(),
            shared: Some(shared),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Pre-populates the free list with `count` buffers.
    pub fn warm_up(&self, count: usize) {
        let handles: Vec<PageBufMut> = (0..count).map(|_| self.acquire()).collect();
        drop(handles);
    }

    /// Returns a husk to the free list once `shared` is the last handle;
    /// earlier clone drops are no-ops so each buffer releases exactly once.
    #[inline]
    fn release(&self, shared: Rc<Vec<u8>>) {
        if Rc::strong_count(&shared) > 1 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        inner.stats.releases += 1;
        inner.stats.in_use -= 1;
        inner.free.push(shared);
    }

    #[inline]
    fn note_grow(&self) {
        self.inner.borrow_mut().stats.grows += 1;
    }
}

impl Default for BufPool {
    /// A pool sized for the paper's 16 KiB pages.
    fn default() -> Self {
        BufPool::new(16384)
    }
}

/// A unique, writable page buffer checked out of a [`BufPool`].
///
/// Fill it (e.g. with [`PageBufMut::extend_from_slice`]) and either
/// [`freeze`](PageBufMut::freeze) it into a shared [`PageBuf`] or drop it to
/// return the storage. Also usable as a reusable scratch buffer: `clear()`
/// and refill without reallocating.
#[derive(Debug)]
pub struct PageBufMut {
    pool: BufPool,
    /// Always `Some` while live; `None` only transiently during
    /// `freeze`/drop. Unique (strong count 1), so `Rc::get_mut` never fails.
    shared: Option<Rc<Vec<u8>>>,
}

impl PageBufMut {
    /// Splits the borrow: the pool handle and the (unique) byte storage are
    /// disjoint fields, so mutators can update stats without cloning.
    #[inline]
    fn parts(&mut self) -> (&BufPool, &mut Vec<u8>) {
        let buf =
            Rc::get_mut(self.shared.as_mut().expect("live buffer")).expect("unique while mutable");
        (&self.pool, buf)
    }

    #[inline]
    fn buf(&mut self) -> &mut Vec<u8> {
        self.parts().1
    }

    #[inline]
    fn buf_ref(&self) -> &Vec<u8> {
        self.shared.as_ref().expect("live buffer")
    }

    /// Appends `bytes`, tracking any capacity growth in the pool stats.
    #[inline]
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        let (pool, buf) = self.parts();
        if buf.len() + bytes.len() > buf.capacity() {
            pool.note_grow();
        }
        buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        let (pool, buf) = self.parts();
        if buf.len() == buf.capacity() {
            pool.note_grow();
        }
        buf.push(byte);
    }

    /// Sets the length to `len`, filling new bytes with `fill`.
    #[inline]
    pub fn resize(&mut self, len: usize, fill: u8) {
        let (pool, buf) = self.parts();
        if len > buf.capacity() {
            pool.note_grow();
        }
        buf.resize(len, fill);
    }

    /// Empties the buffer, keeping its capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.buf().clear();
    }

    /// Current contents length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf_ref().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf_ref().is_empty()
    }

    /// Writable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf().as_mut_slice()
    }

    /// Read-only view of the contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.buf_ref()
    }

    /// Converts into a shared, immutable [`PageBuf`] — no copy and no
    /// allocation: the `Rc` moves across.
    #[inline]
    pub fn freeze(mut self) -> PageBuf {
        let shared = self.shared.take().expect("live buffer");
        PageBuf {
            pool: Some(self.pool.clone()),
            shared: Some(shared),
        }
        // `self` drops here with `shared` empty — no release.
    }
}

impl Deref for PageBufMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.buf_ref()
    }
}

impl Drop for PageBufMut {
    #[inline]
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            self.pool.release(shared);
        }
    }
}

/// A shared, immutable page payload.
///
/// Clones are reference-count bumps; the storage returns to its [`BufPool`]
/// when the last handle drops. Dereferences to `&[u8]`; equality compares
/// contents.
pub struct PageBuf {
    /// `None` for unpooled buffers wrapped via `From<Vec<u8>>`. Held here
    /// rather than next to the bytes so the free list's husks do not keep
    /// the pool alive in a reference cycle.
    pool: Option<BufPool>,
    /// `None` for the (storage-free) empty payload and transiently during
    /// drop; otherwise the shared bytes.
    shared: Option<Rc<Vec<u8>>>,
}

/// Shared backing for empty payloads (`Vec::new` is const, so this never
/// allocates).
static EMPTY_BYTES: Vec<u8> = Vec::new();

impl PageBuf {
    /// An empty, unpooled payload: both fields `None`, so constructing,
    /// cloning, and dropping one touches no reference count at all.
    #[inline]
    pub fn empty() -> PageBuf {
        PageBuf {
            pool: None,
            shared: None,
        }
    }

    #[inline]
    fn buf_ref(&self) -> &Vec<u8> {
        self.shared.as_deref().unwrap_or(&EMPTY_BYTES)
    }

    /// Contents length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf_ref().len()
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf_ref().is_empty()
    }

    /// Read-only view of the contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.buf_ref()
    }

    /// Copies the contents into a standalone `Vec<u8>` (for callers that
    /// genuinely need ownership, e.g. long-lived result buffers).
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf_ref().clone()
    }
}

impl Clone for PageBuf {
    #[inline]
    fn clone(&self) -> PageBuf {
        PageBuf {
            pool: self.pool.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl Drop for PageBuf {
    #[inline]
    fn drop(&mut self) {
        if let (Some(pool), Some(shared)) = (self.pool.take(), self.shared.take()) {
            pool.release(shared);
        }
        // Unpooled: the plain Rc drop frees the storage.
    }
}

impl Deref for PageBuf {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.buf_ref()
    }
}

impl From<Vec<u8>> for PageBuf {
    /// Wraps a plain vector with no pool attached (frees on drop). Keeps
    /// tests and cold paths ergonomic; hot paths should acquire from a pool.
    fn from(buf: Vec<u8>) -> PageBuf {
        PageBuf {
            pool: None,
            shared: Some(Rc::new(buf)),
        }
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like a byte slice so derived Debug output of enclosing
        // types (phases, responses) stays readable and stable.
        fmt::Debug::fmt(self.buf_ref(), f)
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf_ref() == other.buf_ref()
    }
}

impl Eq for PageBuf {}

impl PartialEq<[u8]> for PageBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.buf_ref().as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PageBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.buf_ref() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_instead_of_allocating() {
        let pool = BufPool::new(64);
        for _ in 0..100 {
            let mut b = pool.acquire();
            b.extend_from_slice(&[0xAB; 64]);
            drop(b.freeze());
        }
        let s = pool.stats();
        assert_eq!(s.acquires, 100);
        assert_eq!(s.allocs, 1, "only the first acquire may allocate");
        assert_eq!(s.grows, 0);
        assert_eq!(s.releases, 100);
        assert_eq!(s.in_use, 0);
        assert_eq!(s.high_water, 1);
    }

    #[test]
    fn clones_share_and_release_once() {
        let pool = BufPool::new(16);
        let mut w = pool.acquire();
        w.extend_from_slice(b"hello");
        let a = w.freeze();
        let b = a.clone();
        let c = a.clone();
        assert_eq!(pool.stats().in_use, 1);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().releases, 0, "still one live handle");
        drop(c);
        assert_eq!(pool.stats().releases, 1);
        assert_eq!(pool.stats().in_use, 0);
    }

    #[test]
    fn growth_is_counted() {
        let pool = BufPool::new(4);
        let mut w = pool.acquire();
        w.extend_from_slice(&[0; 16]); // exceeds the 4-byte page size
        drop(w);
        assert_eq!(pool.stats().grows, 1);
        // The grown buffer keeps its capacity on reuse.
        let mut w = pool.acquire();
        w.extend_from_slice(&[0; 16]);
        assert_eq!(pool.stats().grows, 1);
        assert_eq!(pool.stats().allocs, 1);
    }

    #[test]
    fn warm_up_prefills() {
        let pool = BufPool::new(8);
        pool.warm_up(4);
        assert_eq!(pool.stats().allocs, 4);
        let bufs: Vec<PageBufMut> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(pool.stats().allocs, 4, "warmed buffers are reused");
        drop(bufs);
    }

    #[test]
    fn unpooled_pagebuf_works() {
        let p = PageBuf::from(vec![1, 2, 3]);
        assert_eq!(&*p, &[1, 2, 3][..]);
        assert_eq!(p.len(), 3);
        assert_eq!(p, vec![1, 2, 3]);
        let q = p.clone();
        drop(p);
        assert_eq!(q.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn equality_is_by_contents() {
        let pool = BufPool::new(8);
        let mut a = pool.acquire();
        a.extend_from_slice(b"same");
        let a = a.freeze();
        let b = PageBuf::from(b"same".to_vec());
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn scratch_reuse_via_clear() {
        let pool = BufPool::new(8);
        let mut scratch = pool.acquire();
        for i in 0..10u8 {
            scratch.clear();
            scratch.extend_from_slice(&[i; 8]);
            assert_eq!(scratch.as_slice(), &[i; 8]);
        }
        drop(scratch);
        assert_eq!(pool.stats().allocs, 1);
        assert_eq!(pool.stats().grows, 0);
    }

    #[test]
    fn mut_buf_resize_and_slice() {
        let pool = BufPool::new(8);
        let mut w = pool.acquire();
        w.resize(4, 0xFF);
        w.as_mut_slice()[0] = 1;
        w.push(9);
        assert_eq!(&*w, &[1, 0xFF, 0xFF, 0xFF, 9][..]);
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
    }

    #[test]
    fn pool_drops_cleanly_with_full_free_list() {
        // The free list must not keep the pool alive (no Rc cycle): fill
        // it, drop every handle, and let the pool itself drop.
        let pool = BufPool::new(8);
        let bufs: Vec<PageBuf> = (0..4).map(|_| pool.acquire().freeze()).collect();
        drop(bufs);
        assert_eq!(pool.stats().in_use, 0);
        drop(pool);
    }
}

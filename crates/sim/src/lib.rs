//! Discrete-event simulation kernel for the BABOL reproduction.
//!
//! The BABOL paper (MICRO 2024) evaluates a software-defined NAND flash
//! controller on real hardware: an FPGA fabric emitting ONFI waveforms, ARM
//! and MicroBlaze processors running the controller software, and commercial
//! flash packages. None of that hardware is available to a pure-Rust
//! reproduction, so this crate provides the substrate everything else is
//! simulated on:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time.
//!   Picoseconds are fine-grained enough to represent both a 1 GHz CPU cycle
//!   (1000 ps) and a 200 MT/s channel transfer (5000 ps) exactly.
//! * [`Freq`] — clock frequencies (CPU cores, channel transfer rates) and the
//!   conversion from cycle counts to durations.
//! * [`EventQueue`] — a deterministic time-ordered event queue. Ties are
//!   broken by insertion order so simulations are exactly reproducible.
//! * [`cpu::Cpu`] — the processor cost model. Every software action in the
//!   controller (context switch, scheduler pass, transaction enqueue) charges
//!   a cycle budget that is converted to simulated time at the configured
//!   frequency. This is the mechanism behind the paper's Figure 10, where
//!   the same controller software is run on CPUs from 150 MHz to 1 GHz.
//! * [`dram::Dram`] — the SSD's DRAM staging buffer that the Packetizer DMA
//!   unit moves page data in and out of.
//! * [`pool::BufPool`] — the slab buffer pool behind the zero-copy data
//!   path: page payloads are written once into a [`pool::PageBufMut`] and
//!   shared read-only as [`pool::PageBuf`] handles across every layer.
//! * [`par::ShardPool`] — conservative parallel DES: per-channel [`Shard`]s
//!   with private event queues advance concurrently up to a shared time
//!   barrier, with a deterministic shard-id merge so any thread count
//!   reproduces the single-threaded event order bit for bit.
//! * [`rng::SplitMix64`] — a tiny deterministic RNG used where the kernel
//!   itself needs randomness without pulling in external crates.
//! * [`watchdog::Watchdog`] — a sim-time progress monitor that turns a
//!   silently live-locked run (events flowing, no op ever completing) into
//!   a loud diagnostic.

pub mod cpu;
pub mod dram;
pub mod par;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod time;
pub mod watchdog;

pub use cpu::{CostModel, Cpu};
pub use dram::Dram;
pub use par::{Shard, ShardCtor, ShardPool, StepOutcome};
pub use pool::{BufPool, PageBuf, PageBufMut, PoolStats};
pub use queue::EventQueue;
pub use time::{Freq, SimDuration, SimTime};
pub use watchdog::Watchdog;

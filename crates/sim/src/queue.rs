//! A deterministic, time-ordered event queue.
//!
//! Everything in the reproduction advances by popping the earliest pending
//! event: a waveform segment finishing on the channel, a flash array raising
//! R/B#, a CPU completing a scheduler pass. Determinism matters — the paper's
//! figures must regenerate identically run after run — so ties in time are
//! broken by insertion order rather than heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled to fire at a specific simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use babol_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::from_nanos(20), "late");
/// q.push(SimTime::ZERO + SimDuration::from_nanos(10), "early");
/// q.push(SimTime::ZERO + SimDuration::from_nanos(10), "early-tie");
///
/// let (t1, e1) = q.pop().unwrap();
/// assert_eq!((t1.as_picos(), e1), (10_000, "early"));
/// let (_, e2) = q.pop().unwrap();
/// assert_eq!(e2, "early-tie"); // FIFO among ties
/// let (_, e3) = q.pop().unwrap();
/// assert_eq!(e3, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        // A wrapped seq would silently reorder ties and break determinism;
        // at one push per picosecond that is ~584 years of simulated time,
        // so treat it as a logic error rather than handling it.
        debug_assert!(
            seq != u64::MAX,
            "EventQueue sequence counter exhausted (tie-break order would wrap)"
        );
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 'c');
        q.push(at(10), 'a');
        q.push(at(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(at(7), ());
        assert_eq!(q.peek_time(), Some(at(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn extend_and_clear() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (at(i), i)));
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(at(10), 1);
        q.push(at(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(at(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}

//! A deterministic, time-ordered event queue.
//!
//! Everything in the reproduction advances by popping the earliest pending
//! event: a waveform segment finishing on the channel, a flash array raising
//! R/B#, a CPU completing a scheduler pass. Determinism matters — the paper's
//! figures must regenerate identically run after run — so ties in time are
//! broken by insertion order rather than container internals.
//!
//! # Implementation: adaptive calendar (timing wheel)
//!
//! Pop order is defined purely by the `(time, seq)` key, so the container
//! can pick whichever structure is cheapest for the current population
//! without changing observable behaviour:
//!
//! * **Heap mode** (≤ `WHEEL_THRESHOLD` = 64 pending events): a plain binary
//!   min-heap. Construction is free and tiny queues — a few in-flight bus
//!   phases per microbenchmark — stay on the old O(log n) fast path, which
//!   beats any wheel bookkeeping at that size.
//! * **Wheel mode** (first push beyond the threshold, one-way): a two-level
//!   calendar, so pushes and pops are O(1) amortized regardless of how many
//!   events a GC-heavy run keeps in flight:
//!   - **L0** — 1024 slots of 2^16 ps (≈65.5 ns) each, covering ≈67 µs
//!     ahead of the drain cursor. Bus phases, R/B# edges, and scheduler
//!     passes all land here.
//!   - **L1** — 1024 slots of 2^26 ps (≈67 µs) each, covering ≈68.7 ms.
//!     When the L0 window empties, the next occupied L1 slot cascades down.
//!   - **Overflow** — a min-heap for events beyond the L1 horizon
//!     (including `SimTime::FAR_FUTURE`), refilled into L1 as the windows
//!     advance.
//!
//! The wheels' slot storage is allocated lazily at the moment of migration
//! (a fresh queue is just three empty containers), and slot `Vec`s keep
//! their capacity across drains, so steady-state wheel operation performs
//! no allocation. Per-slot occupancy bitmaps make "find the next non-empty
//! slot" a handful of word scans. Events drained from the current slot are
//! sorted by `(time, seq)` into a `ready` batch, so same-timestamp events
//! pop FIFO in insertion order — bit-identical to the previous pure
//! `BinaryHeap` implementation, which the determinism suite and the
//! model-checked property in `tests/properties.rs` both verify.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// log2 of the L0 slot width in picoseconds (2^16 ps ≈ 65.5 ns).
const GRAIN_BITS: u32 = 16;
/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 10;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Words in each occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;
/// Pending-event population above which the queue migrates (once) from
/// plain binary-heap mode to the timing wheels.
const WHEEL_THRESHOLD: usize = 64;

/// An event scheduled to fire at a specific simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first (used by the overflow heap).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// L0 tick (slot-width units) of a timestamp.
#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_picos() >> GRAIN_BITS
}

/// First occupied slot at or after `start`, scanning the bitmap circularly.
///
/// Callers maintain the invariant that every occupied slot lies inside the
/// level's active window starting at `start`, so circular distance from
/// `start` is monotone in event time.
fn first_occupied(occ: &[u64; OCC_WORDS], start: usize) -> Option<usize> {
    let start_word = start >> 6;
    let start_bit = start & 63;
    let w = occ[start_word] & (!0u64 << start_bit);
    if w != 0 {
        return Some((start_word << 6) + w.trailing_zeros() as usize);
    }
    for i in 1..=OCC_WORDS {
        let wi = (start_word + i) & (OCC_WORDS - 1);
        // The wrapped-around final word only counts bits below `start`.
        let w = if i == OCC_WORDS {
            occ[wi] & !(!0u64 << start_bit)
        } else {
            occ[wi]
        };
        if w != 0 {
            return Some((wi << 6) + w.trailing_zeros() as usize);
        }
    }
    None
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use babol_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::from_nanos(20), "late");
/// q.push(SimTime::ZERO + SimDuration::from_nanos(10), "early");
/// q.push(SimTime::ZERO + SimDuration::from_nanos(10), "early-tie");
///
/// let (t1, e1) = q.pop().unwrap();
/// assert_eq!((t1.as_picos(), e1), (10_000, "early"));
/// let (_, e2) = q.pop().unwrap();
/// assert_eq!(e2, "early-tie"); // FIFO among ties
/// let (_, e3) = q.pop().unwrap();
/// assert_eq!(e3, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Events drained from slots below `next_tick`, sorted by `(at, seq)`;
    /// the pop front.
    ready: VecDeque<Scheduled<E>>,
    /// In heap mode: every pending event. In wheel mode: late pushes whose
    /// tick is already below `next_tick` — a min-heap of its own so a late
    /// push costs O(log k) instead of an O(|ready|) mid-queue insert; `pop`
    /// takes whichever front is earliest.
    late: BinaryHeap<Scheduled<E>>,
    /// Whether the queue has migrated to the timing wheels (one-way; reset
    /// only by `clear`).
    wheel: bool,
    /// L0 wheel: slot = tick & SLOT_MASK for ticks in
    /// `[next_tick, cascaded_l1 << SLOT_BITS)` (window ≤ 1024 ticks, so the
    /// mapping is collision-free and a slot holds exactly one tick).
    /// Empty until migration (lazily sized to `SLOTS`).
    l0: Vec<Vec<Scheduled<E>>>,
    l0_occ: [u64; OCC_WORDS],
    /// L1 wheel: slot = l1_tick & SLOT_MASK for l1 ticks in
    /// `[cascaded_l1, cascaded_l1 + 1024)`.
    l1: Vec<Vec<Scheduled<E>>>,
    l1_occ: [u64; OCC_WORDS],
    /// Min-heap of events beyond the L1 horizon.
    overflow: BinaryHeap<Scheduled<E>>,
    /// First L0 tick not yet drained into `ready`.
    next_tick: u64,
    /// First L1 tick not yet cascaded into L0: L0 holds l1 ticks below it,
    /// L1 holds `[cascaded_l1, cascaded_l1 + 1024)`, overflow the rest.
    cascaded_l1: u64,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            ready: VecDeque::new(),
            late: BinaryHeap::new(),
            wheel: false,
            l0: Vec::new(),
            l0_occ: [0; OCC_WORDS],
            l1: Vec::new(),
            l1_occ: [0; OCC_WORDS],
            overflow: BinaryHeap::new(),
            next_tick: 0,
            cascaded_l1: 1,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        // A wrapped seq would silently reorder ties and break determinism;
        // at one push per picosecond that is ~584 years of simulated time,
        // so treat it as a logic error rather than handling it.
        debug_assert!(
            seq != u64::MAX,
            "EventQueue sequence counter exhausted (tie-break order would wrap)"
        );
        self.next_seq += 1;
        self.len += 1;
        let s = Scheduled { at, seq, event };
        if !self.wheel {
            if self.len <= WHEEL_THRESHOLD {
                self.late.push(s);
                return;
            }
            self.migrate_to_wheel();
        }
        self.place(s);
    }

    /// Wheel-mode placement of one event by its tick.
    fn place(&mut self, s: Scheduled<E>) {
        let tick = tick_of(s.at);
        if tick < self.next_tick {
            // The tick was already drained: park in the late heap. `seq` is
            // the largest yet issued, so ordering by `(at, seq)` against the
            // ready front preserves FIFO among ties.
            self.late.push(s);
        } else if tick >> SLOT_BITS < self.cascaded_l1 {
            let slot = (tick & SLOT_MASK) as usize;
            self.l0_occ[slot >> 6] |= 1 << (slot & 63);
            self.l0[slot].push(s);
        } else if tick >> SLOT_BITS < self.cascaded_l1 + SLOTS as u64 {
            let slot = ((tick >> SLOT_BITS) & SLOT_MASK) as usize;
            self.l1_occ[slot >> 6] |= 1 << (slot & 63);
            self.l1[slot].push(s);
        } else {
            self.overflow.push(s);
        }
    }

    /// One-way switch from heap mode: allocates the slot storage and
    /// redistributes the pending events into the wheels.
    fn migrate_to_wheel(&mut self) {
        self.wheel = true;
        if self.l0.is_empty() {
            self.l0 = std::iter::repeat_with(Vec::new).take(SLOTS).collect();
            self.l1 = std::iter::repeat_with(Vec::new).take(SLOTS).collect();
        }
        // Heap mode never advanced the windows, so every event lands in the
        // wheels or overflow (`next_tick` is still 0), never back in `late`.
        let pending: Vec<Scheduled<E>> = self.late.drain().collect();
        for s in pending {
            self.place(s);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.wheel {
            let s = self.late.pop()?;
            self.len -= 1;
            return Some((s.at, s.event));
        }
        // Late entries always lie below `next_tick`, so they beat everything
        // still in the wheels; only the ready front can precede them. A late
        // entry's seq exceeds any same-time ready entry's (it was pushed
        // after the drain), so comparing `(at, seq)` keeps FIFO among ties.
        let take_late = match (self.late.peek(), self.ready.front()) {
            (Some(l), Some(r)) => (l.at, l.seq) < (r.at, r.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_late {
            let s = self.late.pop().expect("peeked");
            self.len -= 1;
            return Some((s.at, s.event));
        }
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        let s = self.ready.pop_front()?;
        self.len -= 1;
        Some((s.at, s.event))
    }

    /// Advances the wheel until `ready` holds the next batch of events.
    /// Returns `false` if the queue is empty.
    fn refill_ready(&mut self) -> bool {
        loop {
            // Drain the earliest occupied L0 slot inside the window.
            let l0_limit = self.cascaded_l1 << SLOT_BITS;
            if self.next_tick < l0_limit {
                if let Some(slot) =
                    first_occupied(&self.l0_occ, (self.next_tick & SLOT_MASK) as usize)
                {
                    let offset = (slot as u64).wrapping_sub(self.next_tick) & SLOT_MASK;
                    let tick = self.next_tick + offset;
                    debug_assert!(tick < l0_limit, "occupied L0 slot outside window");
                    self.l0_occ[slot >> 6] &= !(1u64 << (slot & 63));
                    // Timestamps within one 65.5 ns slot can differ; (at, seq)
                    // keys are unique so unstable sort is deterministic.
                    // Drain in place so the slot keeps its capacity — taking
                    // the Vec would re-malloc it on every reuse.
                    self.l0[slot].sort_unstable_by_key(|s| (s.at, s.seq));
                    self.ready.extend(self.l0[slot].drain(..));
                    self.next_tick = tick + 1;
                    return true;
                }
            }
            self.next_tick = l0_limit;
            // L0 exhausted: cascade the earliest occupied L1 slot down.
            if let Some(slot) =
                first_occupied(&self.l1_occ, (self.cascaded_l1 & SLOT_MASK) as usize)
            {
                let offset = (slot as u64).wrapping_sub(self.cascaded_l1) & SLOT_MASK;
                let l1_tick = self.cascaded_l1 + offset;
                self.l1_occ[slot >> 6] &= !(1u64 << (slot & 63));
                self.next_tick = l1_tick << SLOT_BITS;
                self.cascaded_l1 = l1_tick + 1;
                // Drain in place (disjoint field borrows) so the L1 slot
                // keeps its capacity across reuse.
                let (l0, l0_occ, l1) = (&mut self.l0, &mut self.l0_occ, &mut self.l1);
                for s in l1[slot].drain(..) {
                    let tick = tick_of(s.at);
                    debug_assert!(tick >> SLOT_BITS == l1_tick, "event in wrong L1 slot");
                    let sl = (tick & SLOT_MASK) as usize;
                    l0_occ[sl >> 6] |= 1 << (sl & 63);
                    l0[sl].push(s);
                }
                self.refill_l1_from_overflow();
                continue;
            }
            // Both wheels empty: jump the windows to the earliest overflow
            // event and pull its horizon into L1.
            if let Some(s) = self.overflow.peek() {
                let l1_tick = tick_of(s.at) >> SLOT_BITS;
                self.cascaded_l1 = l1_tick;
                self.next_tick = l1_tick << SLOT_BITS;
                self.refill_l1_from_overflow();
                continue;
            }
            return false;
        }
    }

    /// Moves overflow events that now fall inside the L1 window into L1.
    fn refill_l1_from_overflow(&mut self) {
        let limit = self.cascaded_l1 + SLOTS as u64;
        while let Some(s) = self.overflow.peek() {
            let l1_tick = tick_of(s.at) >> SLOT_BITS;
            if l1_tick >= limit {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            let slot = (l1_tick & SLOT_MASK) as usize;
            self.l1_occ[slot >> 6] |= 1 << (slot & 63);
            self.l1[slot].push(s);
        }
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Window ordering: every late/ready time < every L0 time < every L1
        // time < every overflow time, so the first non-empty source holds
        // the min (late and ready overlap and must be compared directly).
        match (self.late.peek(), self.ready.front()) {
            (Some(l), Some(r)) => return Some(l.at.min(r.at)),
            (Some(l), None) => return Some(l.at),
            (None, Some(r)) => return Some(r.at),
            (None, None) => {}
        }
        if let Some(slot) = first_occupied(&self.l0_occ, (self.next_tick & SLOT_MASK) as usize) {
            return self.l0[slot].iter().map(|s| s.at).min();
        }
        if let Some(slot) = first_occupied(&self.l1_occ, (self.cascaded_l1 & SLOT_MASK) as usize) {
            return self.l1[slot].iter().map(|s| s.at).min();
        }
        self.overflow.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.ready.clear();
        self.late.clear();
        for slot in &mut self.l0 {
            slot.clear();
        }
        for slot in &mut self.l1 {
            slot.clear();
        }
        self.l0_occ = [0; OCC_WORDS];
        self.l1_occ = [0; OCC_WORDS];
        self.overflow.clear();
        // Drop back to heap mode; the slot storage (if it was ever
        // allocated) is kept so a re-migration is just the redistribution.
        self.wheel = false;
        self.next_tick = 0;
        self.cascaded_l1 = 1;
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 'c');
        q.push(at(10), 'a');
        q.push(at(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(at(7), ());
        assert_eq!(q.peek_time(), Some(at(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn extend_and_clear() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (at(i), i)));
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(at(10), 1);
        q.push(at(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(at(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn spans_every_wheel_level() {
        // One event per level: ready-adjacent (ns), L0 (~µs), L1 (~ms),
        // overflow (~s and FAR_FUTURE).
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, 'f');
        q.push(SimTime::from_picos(2_000_000_000_000), 'e'); // 2 s
        q.push(SimTime::from_picos(5_000_000_000), 'd'); // 5 ms
        q.push(SimTime::from_picos(1_000_000), 'c'); // 1 µs
        q.push(SimTime::from_picos(100_000), 'b'); // 100 ns
        q.push(SimTime::from_picos(10), 'a');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd', 'e', 'f']);
    }

    #[test]
    fn late_push_into_drained_tick_stays_fifo() {
        let mut q = EventQueue::new();
        // Two events in the same 65.5 ns slot; popping the first drains the
        // whole slot into `ready`.
        q.push(SimTime::from_picos(100), 0);
        q.push(SimTime::from_picos(200), 2);
        assert_eq!(q.pop().unwrap().1, 0);
        // A push below the drain cursor must merge in time order...
        q.push(SimTime::from_picos(150), 1);
        // ...and a same-time push must pop after the earlier-pushed event.
        q.push(SimTime::from_picos(200), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn far_future_then_near_push_reorders_windows() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_picos(u64::MAX - 1), 'z');
        // Popping nothing yet; push a near event after the far one.
        q.push(at(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'z');
        assert!(q.pop().is_none());
    }

    #[test]
    fn window_jump_then_backfill_before_cursor() {
        let mut q = EventQueue::new();
        // Jump the windows far ahead by draining a distant event...
        q.push(SimTime::from_picos(1 << 40), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        // ...then schedule beyond the cursor and pop in order.
        q.push(SimTime::from_picos((1 << 40) + (1 << 20)), 'c');
        q.push(SimTime::from_picos((1 << 40) + (1 << 30)), 'd');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'd');
        assert!(q.pop().is_none());
    }

    #[test]
    fn dense_bursts_across_slot_boundaries_match_model() {
        // Deterministic mixed workload vs. an ordered-model replay.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u32)> = Vec::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for id in 0u32..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x % 5_000_000; // spans many L0 slots and a few L1 slots
            q.push(SimTime::from_picos(t), id);
            model.push((t, id));
        }
        model.sort(); // (time, id): id order == push order == seq order
        let got: Vec<(u64, u32)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_picos(), e))).collect();
        assert_eq!(got, model);
    }
}

//! A tiny deterministic random number generator.
//!
//! The simulation kernel needs light randomness — jitter on flash array
//! latencies, tie-breaking — without making every downstream crate depend on
//! an external RNG. `SplitMix64` is the standard 64-bit mixer used to seed
//! larger generators; it passes BigCrush on its own and is more than adequate
//! for latency jitter.

/// A `SplitMix64` pseudo-random generator.
///
/// # Examples
///
/// ```
/// use babol_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the bounds used in latency jitter.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_stays_in_bounds() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
            let v = r.next_in_range(5, 8);
            assert!((5..=8).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_roughly_uniform() {
        let mut r = SplitMix64::new(123);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}

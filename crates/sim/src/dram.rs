//! The SSD's DRAM staging buffer.
//!
//! In a real SSD (paper Fig. 1, left) the host-interface controller stages
//! data in DRAM; the storage controller's Packetizer DMA unit moves page data
//! between that DRAM and the flash channel. This module models the DRAM as a
//! sparse byte-addressable space: only regions that were actually written
//! consume host memory, and unwritten bytes read back as zero. The experiments
//! move hundreds of megabytes of simulated data, so sparseness matters.

use std::collections::BTreeMap;

use crate::pool::{BufPool, PageBuf};

/// Granularity of the sparse backing chunks.
const CHUNK: u64 = 4096;

/// A sparse, byte-addressable simulated DRAM.
///
/// # Examples
///
/// ```
/// use babol_sim::Dram;
///
/// let mut dram = Dram::new();
/// dram.write(0x1000, b"hello");
/// let mut buf = [0u8; 5];
/// dram.read(0x1000, &mut buf);
/// assert_eq!(&buf, b"hello");
///
/// // Unwritten space reads back as zeros without allocating.
/// let mut far = [0xAAu8; 4];
/// dram.read(1 << 40, &mut far);
/// assert_eq!(far, [0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dram {
    chunks: BTreeMap<u64, Box<[u8; CHUNK as usize]>>,
    pool: BufPool,
    bytes_read: u64,
    bytes_written: u64,
}

impl Dram {
    /// Creates an empty DRAM.
    pub fn new() -> Self {
        Dram::default()
    }

    /// Shares a buffer pool with the rest of the data path; reads through
    /// [`Dram::read_buf`] recycle its buffers.
    pub fn set_pool(&mut self, pool: &BufPool) {
        self.pool = pool.clone();
    }

    /// The pool backing [`Dram::read_buf`].
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Writes `data` starting at byte address `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.bytes_written += data.len() as u64;
        let mut pos = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let chunk_base = pos / CHUNK * CHUNK;
            let offset = (pos - chunk_base) as usize;
            let take = remaining.len().min(CHUNK as usize - offset);
            let chunk = self
                .chunks
                .entry(chunk_base)
                .or_insert_with(|| Box::new([0u8; CHUNK as usize]));
            chunk[offset..offset + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            pos += take as u64;
        }
    }

    /// Reads into `buf` starting at byte address `addr`.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.bytes_read += buf.len() as u64;
        let mut pos = addr;
        let mut remaining: &mut [u8] = buf;
        while !remaining.is_empty() {
            let chunk_base = pos / CHUNK * CHUNK;
            let offset = (pos - chunk_base) as usize;
            let take = remaining.len().min(CHUNK as usize - offset);
            match self.chunks.get(&chunk_base) {
                Some(chunk) => remaining[..take].copy_from_slice(&chunk[offset..offset + take]),
                None => remaining[..take].fill(0),
            }
            remaining = &mut remaining[take..];
            pos += take as u64;
        }
    }

    /// Convenience: reads `len` bytes starting at `addr` into a new vector.
    ///
    /// Allocates per call; hot paths should use [`Dram::read_buf`], which
    /// recycles pooled buffers.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Reads `len` bytes starting at `addr` into a pooled, shareable page
    /// buffer — the zero-copy counterpart of [`Dram::read_vec`].
    pub fn read_buf(&mut self, addr: u64, len: usize) -> PageBuf {
        let mut buf = self.pool.acquire();
        buf.resize(len, 0);
        self.read(addr, buf.as_mut_slice());
        buf.freeze()
    }

    /// Total bytes written through this DRAM (DMA accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read through this DRAM (DMA accounting).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of 4 KiB chunks actually allocated on the host.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Drops all contents and resets accounting.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_one_chunk() {
        let mut d = Dram::new();
        d.write(10, &[1, 2, 3]);
        assert_eq!(d.read_vec(10, 3), vec![1, 2, 3]);
    }

    #[test]
    fn roundtrip_across_chunk_boundary() {
        let mut d = Dram::new();
        let data: Vec<u8> = (0..=255).collect();
        d.write(CHUNK - 100, &data);
        assert_eq!(d.read_vec(CHUNK - 100, 256), data);
        assert_eq!(d.resident_chunks(), 2);
    }

    #[test]
    fn large_write_spans_many_chunks() {
        let mut d = Dram::new();
        let page = vec![0x5A; 16384];
        d.write(3, &page);
        assert_eq!(d.read_vec(3, 16384), page);
        assert_eq!(d.resident_chunks(), 5); // 16384/4096 + straddle
    }

    #[test]
    fn unwritten_reads_zero_and_stays_sparse() {
        let mut d = Dram::new();
        let v = d.read_vec(1 << 50, 64);
        assert!(v.iter().all(|&b| b == 0));
        assert_eq!(d.resident_chunks(), 0);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut d = Dram::new();
        d.write(0, &[1; 8]);
        d.write(4, &[2; 8]);
        assert_eq!(d.read_vec(0, 12), vec![1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn read_buf_matches_read_vec_and_recycles() {
        let mut d = Dram::new();
        let data: Vec<u8> = (0..=255).collect();
        d.write(CHUNK - 100, &data);
        for _ in 0..10 {
            let b = d.read_buf(CHUNK - 100, 256);
            assert_eq!(b.as_slice(), d.read_vec(CHUNK - 100, 256).as_slice());
        }
        // Sequential acquire/drop cycles reuse one pooled buffer.
        assert_eq!(d.pool().stats().allocs, 1);
    }

    #[test]
    fn accounting_counts_bytes() {
        let mut d = Dram::new();
        d.write(0, &[0; 100]);
        d.read_vec(0, 40);
        assert_eq!(d.bytes_written(), 100);
        assert_eq!(d.bytes_read(), 40);
        d.clear();
        assert_eq!(d.bytes_written(), 0);
        assert_eq!(d.resident_chunks(), 0);
    }
}

//! Simulated time: picosecond-resolution instants, durations and clock
//! frequencies.
//!
//! All timing in the reproduction — ONFI timing parameters, flash array
//! latencies, CPU cycle charges, channel transfer rates — bottoms out in the
//! two types defined here. A `u64` count of picoseconds covers roughly 213
//! days of simulated time, far beyond any experiment in the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with picosecond resolution.
///
/// # Examples
///
/// ```
/// use babol_sim::SimDuration;
///
/// let t_r = SimDuration::from_micros(100); // Hynix page read time
/// assert_eq!(t_r.as_nanos(), 100_000);
/// assert_eq!(t_r * 2, SimDuration::from_micros(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a picosecond count.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Returns the duration as whole picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero instead of panicking.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps % 1_000_000_000_000 == 0 {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps % 1_000_000_000 == 0 {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps % 1_000_000 == 0 {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps % 1_000 == 0 {
            write!(f, "{}ns", ps / 1_000)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// An instant on the simulated timeline, measured from the simulation epoch.
///
/// # Examples
///
/// ```
/// use babol_sim::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_nanos(25);
/// assert_eq!(later - start, SimDuration::from_nanos(25));
/// assert!(later > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time an experiment can reach; useful as a
    /// sentinel "never" value.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates an instant from picoseconds since the epoch.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Returns picoseconds since the epoch.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Returns the duration since the epoch.
    pub const fn since_epoch(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the fixed window containing this instant, with windows
    /// tiling sim time from the epoch: window `k` covers
    /// `[k*w, (k+1)*w)`. The telemetry subsystem keys frames on this, so
    /// every component that samples on the same window length lands on
    /// the same boundaries regardless of its local clock.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use babol_sim::{SimDuration, SimTime};
    ///
    /// let w = SimDuration::from_micros(100);
    /// assert_eq!(SimTime::ZERO.window_index(w), 0);
    /// assert_eq!((SimTime::ZERO + SimDuration::from_micros(99)).window_index(w), 0);
    /// assert_eq!((SimTime::ZERO + SimDuration::from_micros(100)).window_index(w), 1);
    /// ```
    pub const fn window_index(self, window: SimDuration) -> u64 {
        assert!(window.0 != 0, "window must be positive");
        self.0 / window.0
    }

    /// Start of the fixed window containing this instant (see
    /// [`SimTime::window_index`]).
    pub const fn window_start(self, window: SimDuration) -> SimTime {
        SimTime(self.window_index(window) * window.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime difference underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Logic-analyzer style absolute timestamp in microseconds.
        write!(f, "{:.3}us", self.0 as f64 / 1e6)
    }
}

/// A clock frequency.
///
/// Used for CPU cores (e.g. the paper's 150 MHz MicroBlaze soft-core and
/// 1 GHz ARM Cortex-A9) and for channel transfer rates (100 and 200 MT/s
/// NV-DDR2). Converts cycle counts into [`SimDuration`]s.
///
/// # Examples
///
/// ```
/// use babol_sim::Freq;
///
/// let arm = Freq::from_mhz(1000);
/// assert_eq!(arm.cycles(30_000).as_micros(), 30); // a 30k-cycle poll loop
///
/// let softcore = Freq::from_mhz(150);
/// assert!(softcore.cycles(30_000) > arm.cycles(30_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq(u64);

impl Freq {
    /// Creates a frequency from hertz.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be nonzero");
        Freq(hz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Freq::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub const fn from_ghz(ghz: u64) -> Self {
        Freq::from_hz(ghz * 1_000_000_000)
    }

    /// Creates a frequency from megatransfers per second.
    ///
    /// This is an alias of [`Freq::from_mhz`] that matches the vocabulary
    /// used for ONFI data interfaces (e.g. "NV-DDR2 at 200 MT/s").
    pub const fn from_mts(mts: u64) -> Self {
        Freq::from_mhz(mts)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in megahertz (truncating).
    pub const fn as_mhz(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration of a single cycle, rounded to the nearest picosecond.
    pub const fn period(self) -> SimDuration {
        SimDuration((1_000_000_000_000 + self.0 / 2) / self.0)
    }

    /// Duration of `n` cycles, computed without accumulating per-cycle
    /// rounding error.
    pub const fn cycles(self, n: u64) -> SimDuration {
        // n * 1e12 / hz, rounded. 1e12 * n can overflow for very large n, so
        // split into whole seconds and remainder.
        let whole = n / self.0;
        let rem = n % self.0;
        SimDuration(whole * 1_000_000_000_000 + (rem * 1_000_000_000_000 + self.0 / 2) / self.0)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000_000_000 == 0 {
            write!(f, "{}GHz", self.0 / 1_000_000_000)
        } else if self.0 % 1_000_000 == 0 {
            write!(f, "{}MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_nanos(1), SimDuration::from_picos(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(3);
        assert_eq!(a + b, SimDuration::from_nanos(13));
        assert_eq!(a - b, SimDuration::from_nanos(7));
        assert_eq!(a * 3, SimDuration::from_nanos(30));
        assert_eq!(a / 2, SimDuration::from_nanos(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_picos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5));
        assert_eq!(
            t - SimDuration::from_micros(2),
            SimTime::from_picos(3_000_000)
        );
        assert_eq!(SimTime::ZERO.saturating_since(t), SimDuration::ZERO);
    }

    #[test]
    fn freq_period_exact_for_round_clocks() {
        assert_eq!(Freq::from_ghz(1).period(), SimDuration::from_picos(1_000));
        assert_eq!(Freq::from_mhz(200).period(), SimDuration::from_picos(5_000));
        assert_eq!(
            Freq::from_mhz(100).period(),
            SimDuration::from_picos(10_000)
        );
    }

    #[test]
    fn freq_cycles_avoids_rounding_accumulation() {
        // 150 MHz has a non-integral picosecond period (6666.67 ps). Charging
        // 150e6 cycles must give exactly one second.
        let f = Freq::from_mhz(150);
        assert_eq!(f.cycles(150_000_000), SimDuration::from_secs(1));
        // And 3 cycles rounds to 20000 ps.
        assert_eq!(f.cycles(3), SimDuration::from_picos(20_000));
    }

    #[test]
    fn freq_display() {
        assert_eq!(Freq::from_ghz(1).to_string(), "1GHz");
        assert_eq!(Freq::from_mhz(150).to_string(), "150MHz");
    }

    #[test]
    fn duration_display_picks_coarsest_unit() {
        assert_eq!(SimDuration::from_micros(100).to_string(), "100us");
        assert_eq!(SimDuration::from_nanos(25).to_string(), "25ns");
        assert_eq!(SimDuration::from_picos(1).to_string(), "1ps");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn mts_alias() {
        assert_eq!(Freq::from_mts(200), Freq::from_mhz(200));
    }
}

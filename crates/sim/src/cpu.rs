//! The processor cost model.
//!
//! BABOL moves the controller's scheduling logic from hardware into software,
//! so the speed of the processor running that software determines whether the
//! channel is fed promptly (the paper's Figure 10 sweeps CPU frequency from a
//! 150 MHz MicroBlaze soft-core to a 1 GHz ARM Cortex-A9). This module models
//! the processor as a single serial resource: every software action charges a
//! cycle budget, the budget is converted to simulated time at the configured
//! frequency, and actions queue behind each other.
//!
//! The per-action cycle budgets live in [`CostModel`]. Two calibrated models
//! ship with the reproduction, matching the paper's two software
//! environments:
//!
//! * [`CostModel::coroutine`] — the C++20-coroutine runtime. Programmer
//!   friendly but heavy: the paper's Section VI-B measures ~30 µs per
//!   poll cycle at 1 GHz, i.e. ~30k cycles spent on resume/suspend, the
//!   scheduler pass and transaction management.
//! * [`CostModel::rtos`] — the FreeRTOS runtime. Lean context switches, at
//!   the price of a harder programming model.

use std::fmt;

use crate::time::{Freq, SimTime};

/// Cycle budgets for each software action the controller performs.
///
/// These are the calibration constants of the reproduction; see
/// `EXPERIMENTS.md` for how they were fit to the paper's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Resuming a suspended operation (coroutine resume / RTOS task switch
    /// in).
    pub resume: u64,
    /// Suspending the running operation at an await/yield point.
    pub suspend: u64,
    /// One pass of the task scheduler choosing the next operation to run.
    pub task_sched_pass: u64,
    /// One pass of the transaction scheduler choosing the next transaction
    /// for the channel.
    pub txn_sched_pass: u64,
    /// Building a transaction descriptor and enqueuing it.
    pub enqueue_txn: u64,
    /// Handling a hardware completion notification (interrupt service or
    /// queue poll).
    pub completion_irq: u64,
    /// Straight-line work inside operation bodies per step (argument
    /// marshalling, status decoding, branch logic).
    pub op_body_step: u64,
}

impl CostModel {
    /// Cost model for the C++20-coroutine software environment.
    ///
    /// The heavy C++ runtime costs a few thousand cycles per action. The
    /// ~30 µs polling period the paper measures at 1 GHz (Fig. 11) is the
    /// *sum* of these action costs and the runtime's poll-pacing interval
    /// (`poll_backoff` in the BABOL runtime configuration): a busy-looping
    /// coroutine is rescheduled on the runtime's timer quantum rather than
    /// hot-spinning the channel.
    pub const fn coroutine() -> Self {
        CostModel {
            resume: 1_500,
            suspend: 1_100,
            task_sched_pass: 900,
            txn_sched_pass: 600,
            enqueue_txn: 800,
            completion_irq: 700,
            op_body_step: 250,
        }
    }

    /// Cost model for the FreeRTOS software environment.
    ///
    /// Roughly an order of magnitude leaner than the coroutine runtime —
    /// the paper's Fig. 11 shows FreeRTOS polling many times within the
    /// window a single coroutine poll needs.
    pub const fn rtos() -> Self {
        CostModel {
            resume: 250,
            suspend: 200,
            task_sched_pass: 180,
            txn_sched_pass: 120,
            enqueue_txn: 150,
            completion_irq: 140,
            op_body_step: 60,
        }
    }

    /// A zero-cost model, used for the hardware-baseline controllers whose
    /// scheduling logic runs in dedicated FPGA area rather than on the CPU.
    pub const fn free() -> Self {
        CostModel {
            resume: 0,
            suspend: 0,
            task_sched_pass: 0,
            txn_sched_pass: 0,
            enqueue_txn: 0,
            completion_irq: 0,
            op_body_step: 0,
        }
    }

    /// Total cycles of one poll-loop iteration under this model (used by the
    /// ablation benches and tests).
    pub const fn poll_cycle(&self) -> u64 {
        self.resume
            + self.op_body_step
            + self.enqueue_txn
            + self.suspend
            + self.completion_irq
            + self.task_sched_pass
            + self.txn_sched_pass
    }

    /// Returns a copy of this model with every budget scaled by
    /// `numer / denom` (used by the context-switch-cost ablation).
    pub const fn scaled(&self, numer: u64, denom: u64) -> Self {
        CostModel {
            resume: self.resume * numer / denom,
            suspend: self.suspend * numer / denom,
            task_sched_pass: self.task_sched_pass * numer / denom,
            txn_sched_pass: self.txn_sched_pass * numer / denom,
            enqueue_txn: self.enqueue_txn * numer / denom,
            completion_irq: self.completion_irq * numer / denom,
            op_body_step: self.op_body_step * numer / denom,
        }
    }
}

/// A single serial processor executing the controller software.
///
/// The processor is modelled as a busy-until cursor: work requested at time
/// `t` starts at `max(t, busy_until)`, runs for `cycles / freq`, and pushes
/// the cursor forward. The returned completion time is when the action's
/// effects (e.g. a freshly enqueued transaction) become visible to the rest
/// of the system.
///
/// # Examples
///
/// ```
/// use babol_sim::{Cpu, CostModel, Freq, SimTime, SimDuration};
///
/// let mut cpu = Cpu::new(Freq::from_mhz(1000), CostModel::rtos());
/// let t0 = SimTime::ZERO;
/// let done1 = cpu.charge(t0, 1000); // 1000 cycles at 1 GHz = 1 us
/// assert_eq!(done1 - t0, SimDuration::from_micros(1));
///
/// // A second action requested at the same instant queues behind the first.
/// let done2 = cpu.charge(t0, 1000);
/// assert_eq!(done2 - t0, SimDuration::from_micros(2));
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    freq: Freq,
    cost: CostModel,
    busy_until: SimTime,
    busy_cycles: u64,
    mark_time: SimTime,
    mark_cycles: u64,
}

impl Cpu {
    /// Creates a processor with the given clock frequency and cost model.
    pub fn new(freq: Freq, cost: CostModel) -> Self {
        Cpu {
            freq,
            cost,
            busy_until: SimTime::ZERO,
            busy_cycles: 0,
            mark_time: SimTime::ZERO,
            mark_cycles: 0,
        }
    }

    /// The processor's clock frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The cycle budgets charged for software actions.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The time at which the processor becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total cycles charged so far (for utilization reporting).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Fraction of wall time `[SimTime::ZERO, now]` the processor spent busy.
    ///
    /// Cumulative from epoch — boot and calibration dilute it. For a
    /// post-warm-up window, set a mark with [`Cpu::mark_utilization`] and
    /// read [`Cpu::utilization_since`] instead.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let busy = self.freq.cycles(self.busy_cycles);
        (busy.as_picos() as f64 / now.since_epoch().as_picos() as f64).min(1.0)
    }

    /// Starts a fresh utilization measurement window at `now`: subsequent
    /// [`Cpu::utilization_since`] calls report only work charged after
    /// this point.
    pub fn mark_utilization(&mut self, now: SimTime) {
        self.mark_time = now;
        self.mark_cycles = self.busy_cycles;
    }

    /// Fraction of `[mark, now]` the processor spent busy, where `mark` is
    /// the last [`Cpu::mark_utilization`] call (epoch if never marked).
    /// Returns 0 for an empty window.
    pub fn utilization_since(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.mark_time);
        if window.is_zero() {
            return 0.0;
        }
        let busy = self.freq.cycles(self.busy_cycles - self.mark_cycles);
        (busy.as_picos() as f64 / window.as_picos() as f64).min(1.0)
    }

    /// Charges `cycles` of work requested at `now`; returns the completion
    /// time. Work serializes behind any still-running action.
    pub fn charge(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + self.freq.cycles(cycles);
        self.busy_until = done;
        self.busy_cycles += cycles;
        done
    }

    /// Resets the busy cursor (used between experiment repetitions).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.busy_cycles = 0;
        self.mark_time = SimTime::ZERO;
        self.mark_cycles = 0;
    }
}

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu@{}", self.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn charge_serializes_work() {
        let mut cpu = Cpu::new(Freq::from_mhz(100), CostModel::free());
        let t0 = SimTime::ZERO;
        let d1 = cpu.charge(t0, 100); // 1 us at 100 MHz
        let d2 = cpu.charge(t0, 100);
        assert_eq!(d1 - t0, SimDuration::from_micros(1));
        assert_eq!(d2 - t0, SimDuration::from_micros(2));
        assert_eq!(cpu.busy_until(), d2);
    }

    #[test]
    fn charge_after_idle_starts_at_request_time() {
        let mut cpu = Cpu::new(Freq::from_mhz(100), CostModel::free());
        cpu.charge(SimTime::ZERO, 100);
        let later = SimTime::ZERO + SimDuration::from_millis(1);
        let done = cpu.charge(later, 100);
        assert_eq!(done - later, SimDuration::from_micros(1));
    }

    #[test]
    fn zero_cycles_is_instant() {
        let mut cpu = Cpu::new(Freq::from_ghz(1), CostModel::free());
        let t = SimTime::ZERO + SimDuration::from_nanos(5);
        assert_eq!(cpu.charge(t, 0), t);
    }

    #[test]
    fn coroutine_poll_actions_cost_a_few_microseconds_at_1ghz() {
        let m = CostModel::coroutine();
        let t = Freq::from_ghz(1).cycles(m.poll_cycle());
        // The action costs are the CPU-bound part of the ~30 us polling
        // period (Fig. 11); the rest is the runtime's pacing interval.
        let us = t.as_micros_f64();
        assert!((3.0..=10.0).contains(&us), "poll actions took {us} us");
    }

    #[test]
    fn rtos_poll_cycle_is_much_cheaper() {
        let coro = CostModel::coroutine().poll_cycle();
        let rtos = CostModel::rtos().poll_cycle();
        assert!(rtos * 5 < coro, "rtos {rtos} vs coro {coro}");
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut cpu = Cpu::new(Freq::from_mhz(100), CostModel::free());
        cpu.charge(SimTime::ZERO, 100); // busy 1 us
        let now = SimTime::ZERO + SimDuration::from_micros(4);
        let u = cpu.utilization(now);
        assert!((u - 0.25).abs() < 1e-9, "utilization {u}");
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_since_measures_only_the_marked_window() {
        let mut cpu = Cpu::new(Freq::from_mhz(100), CostModel::free());
        // "Boot": 4 us of work in the first 4 us — 100% busy.
        cpu.charge(SimTime::ZERO, 400);
        let warm = SimTime::ZERO + SimDuration::from_micros(4);
        cpu.mark_utilization(warm);
        // Steady state: 1 us of work over the next 4 us — 25% busy.
        cpu.charge(warm, 100);
        let now = warm + SimDuration::from_micros(4);
        let since = cpu.utilization_since(now);
        assert!((since - 0.25).abs() < 1e-9, "windowed {since}");
        // The cumulative number is diluted the other way: (4+1)/8.
        let total = cpu.utilization(now);
        assert!((total - 0.625).abs() < 1e-9, "cumulative {total}");
        // Empty window reads 0, and an unmarked CPU matches cumulative.
        assert_eq!(cpu.utilization_since(warm), 0.0);
        let mut fresh = Cpu::new(Freq::from_mhz(100), CostModel::free());
        fresh.charge(SimTime::ZERO, 100);
        assert_eq!(fresh.utilization(now), fresh.utilization_since(now));
    }

    #[test]
    fn scaled_cost_model() {
        let m = CostModel::rtos().scaled(2, 1);
        assert_eq!(m.resume, CostModel::rtos().resume * 2);
        let half = CostModel::rtos().scaled(1, 2);
        assert_eq!(half.resume, CostModel::rtos().resume / 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut cpu = Cpu::new(Freq::from_ghz(1), CostModel::rtos());
        cpu.charge(SimTime::ZERO, 12345);
        cpu.reset();
        assert_eq!(cpu.busy_until(), SimTime::ZERO);
        assert_eq!(cpu.busy_cycles(), 0);
    }
}

//! Workload generation for the paper's microbenchmarks.
//!
//! "We use a workload generator that injects requests directly into the
//! storage controllers as if they were coming from the FTL" (§VI). Requests
//! are page reads (the hardest case for a software controller, because tR is
//! the shortest array time), either sequential or uniformly random, spread
//! across the channel's LUNs.

use babol_flash::Geometry;
use babol_sim::rng::SplitMix64;

use crate::system::{IoKind, IoRequest};

/// Request ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Pages in ascending (block, page) order per LUN.
    Sequential,
    /// Uniformly random pages, deterministic per seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// A read workload over one channel.
#[derive(Debug, Clone, Copy)]
pub struct ReadWorkload {
    /// Number of LUNs targeted (requests round-robin across them).
    pub luns: u32,
    /// Total requests.
    pub count: u64,
    /// Ordering.
    pub order: Order,
    /// Bytes read per request (usually the full page).
    pub len: usize,
}

impl ReadWorkload {
    /// Materializes the request list for packages of `geometry`. DRAM
    /// buffers are laid out back to back per request, wrapping at 64 MiB so
    /// long runs do not grow the sparse DRAM unboundedly.
    pub fn generate(&self, geometry: &Geometry) -> Vec<IoRequest> {
        assert!(self.luns >= 1);
        assert!(self.len <= geometry.page_size);
        let mut rng = match self.order {
            Order::Random { seed } => SplitMix64::new(seed),
            Order::Sequential => SplitMix64::new(0),
        };
        let pages_per_block = geometry.pages_per_block;
        let blocks = geometry.blocks_per_lun();
        let mut next_seq: Vec<u64> = vec![0; self.luns as usize];
        let dram_window = 64 * 1024 * 1024 / self.len.max(1) as u64;
        (0..self.count)
            .map(|i| {
                let lun = (i % self.luns as u64) as u32;
                let (block, page) = match self.order {
                    Order::Sequential => {
                        let idx = next_seq[lun as usize];
                        next_seq[lun as usize] += 1;
                        let block = (idx / pages_per_block as u64) % blocks as u64;
                        let page = idx % pages_per_block as u64;
                        (block as u32, page as u32)
                    }
                    Order::Random { .. } => (
                        rng.next_below(blocks as u64) as u32,
                        rng.next_below(pages_per_block as u64) as u32,
                    ),
                };
                IoRequest {
                    id: i,
                    kind: IoKind::Read,
                    lun,
                    block,
                    page,
                    col: 0,
                    len: self.len,
                    dram_addr: (i % dram_window) * self.len as u64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(order: Order) -> ReadWorkload {
        ReadWorkload {
            luns: 4,
            count: 64,
            order,
            len: 16384,
        }
    }

    #[test]
    fn sequential_covers_pages_in_order_per_lun() {
        let reqs = wl(Order::Sequential).generate(&Geometry::paper_16k());
        // Per LUN, (block, page) must be non-decreasing and start at 0.
        for lun in 0..4 {
            let mine: Vec<_> = reqs.iter().filter(|r| r.lun == lun).collect();
            assert_eq!(mine[0].block, 0);
            assert_eq!(mine[0].page, 0);
            for pair in mine.windows(2) {
                let a = (pair[0].block, pair[0].page);
                let b = (pair[1].block, pair[1].page);
                assert!(b > a, "{a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = wl(Order::Random { seed: 5 }).generate(&Geometry::paper_16k());
        let b = wl(Order::Random { seed: 5 }).generate(&Geometry::paper_16k());
        let c = wl(Order::Random { seed: 6 }).generate(&Geometry::paper_16k());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_round_robin_across_luns() {
        let reqs = wl(Order::Sequential).generate(&Geometry::paper_16k());
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.lun, (i % 4) as u32);
        }
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let g = Geometry::tiny();
        let reqs = ReadWorkload {
            luns: 2,
            count: 500,
            order: Order::Random { seed: 1 },
            len: 512,
        }
        .generate(&g);
        for r in &reqs {
            assert!(r.block < g.blocks_per_lun());
            assert!(r.page < g.pages_per_block);
        }
    }
}

//! BABOL: a software-defined NAND flash controller.
//!
//! This crate is the reproduction of the paper's contribution proper: a
//! storage controller whose *operations* (READ, PROGRAM, ERASE, and all
//! their vendor-optimized variants) are written as small software routines
//! that enqueue μFSM instructions, while dedicated (simulated) hardware
//! executes the resulting waveform segments on time.
//!
//! The crate mirrors the architecture of the paper's Figure 5:
//!
//! * **Operation Scheduling** (software): [`runtime`] hosts the two software
//!   environments — a coroutine executor ([`runtime::coro`], the C++20
//!   analogue, ops written as `async fn`) and an RTOS-style task runtime
//!   ([`runtime::rtos`], ops written as explicit state machines). Pluggable
//!   [`sched`] policies decide which task runs and which transaction uses
//!   the channel next.
//! * **Operation Execution** (hardware): the μFSM engine from `babol-ufsm`,
//!   driven through a small hardware instruction queue with look-ahead.
//! * **Operations**: [`ops`] is the coroutine operation library — Algorithms
//!   1–3 of the paper plus the advanced operations its introduction cites
//!   (pSLC, read-retry, cache reads, multi-plane, suspend/resume, RAIL-style
//!   gang reads). `runtime::rtos`'s op library is the RTOS flavour of the core set.
//! * **Baselines**: [`hw`] implements the two hardware-only controllers the
//!   paper compares against — a synchronous per-LUN-FSM design (Qiu et al.)
//!   and the asynchronous Cosmos+ design — as deliberately verbose,
//!   hard-coded FSMs with zero software cost.
//! * **Boot**: [`boot`] reproduces §IV-C — reset, parameter-page discovery,
//!   timing-mode bring-up, and DQS-phase calibration.
//! * **Harness**: [`system`] is the discrete-event engine tying CPU model,
//!   channel, DRAM and controllers together; [`workload`] generates the
//!   paper's microbenchmark request streams.

pub mod boot;
pub mod factory;
pub mod hw;
pub mod lintcap;
pub mod ops;
pub mod runtime;
pub mod sched;
pub mod system;
pub mod workload;

pub use system::{Controller, Engine, Event, IoKind, IoRequest, RunReport, System};

//! The coroutine operation library.
//!
//! These are the paper's Figure 8 algorithms and the advanced operations its
//! introduction motivates, written against [`OpCtx`]. Each operation is a
//! composition of μFSM invocations wrapped in transactions; polling loops
//! relinquish control at every `await`, exactly like the paper's `co_await`.
//!
//! The `@loc:` markers bracket the operations counted in Table II
//! (lines of code of READ / PROGRAM / ERASE); see `babol-bench`'s
//! `repro_table2`, which counts these regions of this very file.

use babol_onfi::addr::{AddrLayout, ColumnAddr, RowAddr};
use babol_onfi::bus::ChipMask;
use babol_onfi::feature;
use babol_onfi::opcode::op;
use babol_onfi::status::Status;
use babol_sim::SimDuration;
use babol_ufsm::{DmaDest, Latch, PostWait, Transaction};

use crate::runtime::coro::OpCtx;
use crate::runtime::OpError;

/// Addressing context for one operation: which chip-enable line, and how to
/// pack addresses for the wired package.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// CE# index on the channel.
    pub chip: u32,
    /// Address-cycle layout of the package.
    pub layout: AddrLayout,
}

impl Target {
    fn mask(&self) -> ChipMask {
        ChipMask::single(self.chip)
    }
}

// ---------------------------------------------------------------- statuses

// @loc:read_status:begin
/// READ STATUS (paper Algorithm 1): ask a LUN whether it finished its
/// previously assigned task. Issues opcode `0x70`, reads one byte back.
pub async fn read_status(ctx: &OpCtx, t: &Target) -> u8 {
    let txn = Transaction::new(t.mask())
        .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
        .read(1, DmaDest::Inline);
    let result = ctx.submit(txn).await;
    ctx.step();
    result.inline[0]
}
// @loc:read_status:end

/// Polls READ STATUS until the RDY bit (0x40) is set; returns the final
/// status byte (Algorithm 2, lines 7..9).
pub async fn wait_ready(ctx: &OpCtx, t: &Target) -> u8 {
    loop {
        let status = read_status(ctx, t).await;
        if status & Status::RDY != 0 {
            return status;
        }
        // Busy: reschedule after the runtime's pacing quantum instead of
        // hot-spinning the channel (the interval seen in Fig. 11).
        if !ctx.poll_backoff().is_zero() {
            ctx.sleep(ctx.poll_backoff()).await;
        }
    }
}

// ------------------------------------------------------------------- reads

// @loc:read:begin
/// READ with a Column Address Change (paper Algorithm 2).
///
/// Latches the page address and the READ confirmation, polls READ STATUS
/// until the array fetch (tR) completes, then moves the requested chunk out
/// of the page register into DRAM via CHANGE READ COLUMN. Works at any
/// offset; with `col = 0` it degenerates into a full-page READ, which is
/// why "many SSD Architects only implement the former operation".
pub async fn read_page(
    ctx: &OpCtx,
    t: &Target,
    row: RowAddr,
    col: u32,
    len: usize,
    dest: u64,
) -> Result<(), OpError> {
    // Transaction 1: command + page address latch, confirm (starts tR).
    let addr = t.layout.pack_full(ColumnAddr(0), row);
    let latch = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr),
            Latch::Cmd(op::READ_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(latch).await;
    // Poll for the end of the array fetch instead of a fixed tR wait.
    let status = wait_ready(ctx, t).await;
    if status & Status::FAIL != 0 {
        ctx.set_outcome(Err(OpError::Failed { status }));
        return Err(OpError::Failed { status });
    }
    // Transaction 2: select the chunk (0x05 .. 0xE0) and stream it out.
    let col_addr = t.layout.pack_col(ColumnAddr(col));
    let fetch = Transaction::new(t.mask())
        .ca(
            vec![
                Latch::Cmd(op::CHANGE_READ_COL_1),
                Latch::Addr(col_addr),
                Latch::Cmd(op::CHANGE_READ_COL_2),
            ],
            PostWait::Ccs,
        )
        .read(len, DmaDest::Dram(dest));
    ctx.submit(fetch).await;
    ctx.step();
    Ok(())
}
// @loc:read:end

// @loc:read_pslc:begin
/// Pseudo-SLC READ (paper Algorithm 3): identical to [`read_page`] except
/// for the vendor prefix that makes the array sense the cells as SLC —
/// faster and gentler on worn blocks. "Thanks to BABOL's software
/// environment, conceiving such an operation is trivial."
pub async fn read_page_pslc(
    ctx: &OpCtx,
    t: &Target,
    row: RowAddr,
    col: u32,
    len: usize,
    dest: u64,
) -> Result<(), OpError> {
    let addr = t.layout.pack_full(ColumnAddr(0), row);
    let latch = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::PSLC_PREFIX), // the one-line difference
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr),
            Latch::Cmd(op::READ_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(latch).await;
    let status = wait_ready(ctx, t).await;
    if status & Status::FAIL != 0 {
        ctx.set_outcome(Err(OpError::Failed { status }));
        return Err(OpError::Failed { status });
    }
    let col_addr = t.layout.pack_col(ColumnAddr(col));
    let fetch = Transaction::new(t.mask())
        .ca(
            vec![
                Latch::Cmd(op::CHANGE_READ_COL_1),
                Latch::Addr(col_addr),
                Latch::Cmd(op::CHANGE_READ_COL_2),
            ],
            PostWait::Ccs,
        )
        .read(len, DmaDest::Dram(dest));
    ctx.submit(fetch).await;
    ctx.step();
    Ok(())
}
// @loc:read_pslc:end

// ---------------------------------------------------------------- programs

// @loc:program:begin
/// PAGE PROGRAM: latch address, stream data from DRAM into the page
/// register, confirm (starts tPROG), poll for completion, check FAIL.
pub async fn program_page(
    ctx: &OpCtx,
    t: &Target,
    row: RowAddr,
    src: u64,
    len: usize,
) -> Result<(), OpError> {
    let addr = t.layout.pack_full(ColumnAddr(0), row);
    let txn = Transaction::new(t.mask())
        .ca(
            vec![Latch::Cmd(op::PROGRAM_1), Latch::Addr(addr)],
            PostWait::Adl,
        )
        .write(len, src)
        .ca(vec![Latch::Cmd(op::PROGRAM_2)], PostWait::Wb);
    ctx.submit(txn).await;
    let status = wait_ready(ctx, t).await;
    ctx.step();
    if status & Status::FAIL != 0 {
        ctx.set_outcome(Err(OpError::Failed { status }));
        return Err(OpError::Failed { status });
    }
    Ok(())
}
// @loc:program:end

/// Pseudo-SLC PROGRAM: the pSLC-prefixed variant of [`program_page`].
pub async fn program_page_pslc(
    ctx: &OpCtx,
    t: &Target,
    row: RowAddr,
    src: u64,
    len: usize,
) -> Result<(), OpError> {
    let addr = t.layout.pack_full(ColumnAddr(0), row);
    let txn = Transaction::new(t.mask())
        .ca(
            vec![
                Latch::Cmd(op::PSLC_PREFIX),
                Latch::Cmd(op::PROGRAM_1),
                Latch::Addr(addr),
            ],
            PostWait::Adl,
        )
        .write(len, src)
        .ca(vec![Latch::Cmd(op::PROGRAM_2)], PostWait::Wb);
    ctx.submit(txn).await;
    let status = wait_ready(ctx, t).await;
    ctx.step();
    if status & Status::FAIL != 0 {
        return Err(OpError::Failed { status });
    }
    Ok(())
}

// ------------------------------------------------------------------ erases

// @loc:erase:begin
/// BLOCK ERASE: latch the row address, confirm (starts tBERS), poll, check
/// FAIL.
pub async fn erase_block(ctx: &OpCtx, t: &Target, row: RowAddr) -> Result<(), OpError> {
    let addr = t.layout.pack_row(row);
    let txn = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::ERASE_1),
            Latch::Addr(addr),
            Latch::Cmd(op::ERASE_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(txn).await;
    let status = wait_ready(ctx, t).await;
    ctx.step();
    if status & Status::FAIL != 0 {
        ctx.set_outcome(Err(OpError::Failed { status }));
        return Err(OpError::Failed { status });
    }
    Ok(())
}
// @loc:erase:end

// --------------------------------------------------------- config & identity

/// SET FEATURES: `0xEF` + feature address, a tADL pause (Timer μFSM — the
/// paper's §IV-A example), then the four parameter bytes from DRAM.
pub async fn set_features(
    ctx: &OpCtx,
    t: &Target,
    feature: u8,
    value: [u8; 4],
    scratch_dram: u64,
) -> Result<(), OpError> {
    ctx.stage_bytes(scratch_dram, &value);
    let txn = Transaction::new(t.mask())
        .ca(
            vec![Latch::Cmd(op::SET_FEATURES), Latch::Addr(vec![feature])],
            PostWait::Adl,
        )
        .write(4, scratch_dram);
    ctx.submit(txn).await;
    // The feature change needs a moment to take effect inside the array.
    ctx.sleep(SimDuration::from_micros(1)).await;
    ctx.step();
    Ok(())
}

/// GET FEATURES: reads the four parameter bytes of a feature address.
pub async fn get_features(ctx: &OpCtx, t: &Target, feature: u8) -> [u8; 4] {
    let txn = Transaction::new(t.mask())
        .ca(
            vec![Latch::Cmd(op::GET_FEATURES), Latch::Addr(vec![feature])],
            PostWait::Whr,
        )
        .read(4, DmaDest::Inline);
    let r = ctx.submit(txn).await;
    ctx.step();
    [r.inline[0], r.inline[1], r.inline[2], r.inline[3]]
}

/// READ ID: returns the first `len` identification bytes.
pub async fn read_id(ctx: &OpCtx, t: &Target, len: usize) -> Vec<u8> {
    let txn = Transaction::new(t.mask())
        .ca(
            vec![Latch::Cmd(op::READ_ID), Latch::Addr(vec![0x00])],
            PostWait::Whr,
        )
        .read(len, DmaDest::Inline);
    ctx.submit(txn).await.inline
}

/// RESET: issues `0xFF` and polls until the package recovers.
pub async fn reset(ctx: &OpCtx, t: &Target) -> Result<(), OpError> {
    let txn = Transaction::new(t.mask()).ca(vec![Latch::Cmd(op::RESET)], PostWait::Wb);
    ctx.submit(txn).await;
    wait_ready(ctx, t).await;
    Ok(())
}

/// READ PARAMETER PAGE: fetches `copies` 256-byte copies inline.
pub async fn read_param_page(ctx: &OpCtx, t: &Target, copies: usize) -> Vec<u8> {
    let txn = Transaction::new(t.mask()).ca(
        vec![Latch::Cmd(op::READ_PARAM_PAGE), Latch::Addr(vec![0x00])],
        PostWait::Wb,
    );
    ctx.submit(txn).await;
    wait_ready(ctx, t).await;
    // Restore data output (a READ STATUS leaves the LUN in status-out mode).
    let fetch = Transaction::new(t.mask())
        .ca(vec![Latch::Cmd(op::READ_1)], PostWait::Whr)
        .read(256 * copies, DmaDest::Inline);
    ctx.submit(fetch).await.inline
}

// ------------------------------------------------------ advanced operations

/// READ with retries (Park et al., ASPLOS'21; paper §I): step the vendor
/// read-retry level via SET FEATURES until `verify` accepts the data or the
/// levels are exhausted. `verify` is typically an ECC decode.
///
/// The argument list mirrors the ONFI command sequence one-to-one, so the
/// count stays as-is rather than hiding parameters in a struct.
#[allow(clippy::too_many_arguments)]
pub async fn read_with_retry(
    ctx: &OpCtx,
    t: &Target,
    row: RowAddr,
    len: usize,
    dest: u64,
    scratch_dram: u64,
    max_level: u8,
    mut verify: impl FnMut(u8) -> bool,
) -> Result<u8, OpError> {
    for level in 0..=max_level {
        if level > 0 {
            set_features(
                ctx,
                t,
                feature::addr::READ_RETRY_LEVEL,
                [level, 0, 0, 0],
                scratch_dram,
            )
            .await?;
        }
        read_page(ctx, t, row, 0, len, dest).await?;
        if verify(level) {
            if level > 0 {
                // Restore the default level for subsequent reads.
                set_features(
                    ctx,
                    t,
                    feature::addr::READ_RETRY_LEVEL,
                    [0, 0, 0, 0],
                    scratch_dram,
                )
                .await?;
            }
            return Ok(level);
        }
    }
    ctx.set_outcome(Err(OpError::Uncorrectable));
    Err(OpError::Uncorrectable)
}

/// RAIL-style gang read (Litz et al., ToS'22; paper Fig. 6d): start the
/// array fetch on *several* replicas at once via the Chip Control bitmap,
/// then stream from whichever LUN reports ready first — trimming tail
/// latency caused by slow reads.
pub async fn gang_read(
    ctx: &OpCtx,
    targets: &[Target],
    row: RowAddr,
    len: usize,
    dest: u64,
) -> Result<u32, OpError> {
    assert!(!targets.is_empty());
    // Gang-latch the READ on every replica in one segment.
    let mask = targets
        .iter()
        .fold(ChipMask::NONE, |m, t| m | ChipMask::single(t.chip));
    let addr = targets[0].layout.pack_full(ColumnAddr(0), row);
    let latch = Transaction::new(mask).ca(
        vec![
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr),
            Latch::Cmd(op::READ_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(latch).await;
    // Poll the replicas round-robin; first ready wins.
    let winner = loop {
        let mut done = None;
        for t in targets {
            let status = read_status(ctx, t).await;
            if status & Status::RDY != 0 {
                done = Some(t);
                break;
            }
        }
        if let Some(t) = done {
            break t;
        }
        if !ctx.poll_backoff().is_zero() {
            ctx.sleep(ctx.poll_backoff()).await;
        }
    };
    let col_addr = winner.layout.pack_col(ColumnAddr(0));
    let fetch = Transaction::new(winner.mask())
        .ca(
            vec![
                Latch::Cmd(op::CHANGE_READ_COL_1),
                Latch::Addr(col_addr),
                Latch::Cmd(op::CHANGE_READ_COL_2),
            ],
            PostWait::Ccs,
        )
        .read(len, DmaDest::Dram(dest));
    ctx.submit(fetch).await;
    Ok(winner.chip)
}

/// Sequential cache read: streams `count` consecutive pages using READ
/// CACHE SEQUENTIAL so the array fetches page *k+1* while page *k* crosses
/// the bus — the ONFI pipelining the paper lists among the READ variations.
pub async fn cache_read_seq(
    ctx: &OpCtx,
    t: &Target,
    first: RowAddr,
    count: u32,
    page_len: usize,
    dest: u64,
) -> Result<(), OpError> {
    assert!(count >= 1);
    // Prime the pipeline with a normal READ of the first page.
    let addr = t.layout.pack_full(ColumnAddr(0), first);
    let latch = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr),
            Latch::Cmd(op::READ_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(latch).await;
    wait_ready(ctx, t).await;
    for k in 0..count {
        let last = k == count - 1;
        // Move the fetched page to the cache register; start the next fetch
        // (0x31) or finish the stream (0x3F).
        let opcode = if last {
            op::READ_CACHE_END
        } else {
            op::READ_CACHE_SEQ
        };
        let kick = Transaction::new(t.mask()).ca(vec![Latch::Cmd(opcode)], PostWait::Wb);
        ctx.submit(kick).await;
        // Stream page k from the cache register while the array works.
        let fetch = Transaction::new(t.mask())
            .read(page_len, DmaDest::Dram(dest + k as u64 * page_len as u64));
        ctx.submit(fetch).await;
        if !last {
            // The next page must be in the page register before we cycle.
            wait_ready_cached(ctx, t).await;
        }
    }
    ctx.step();
    Ok(())
}

/// Polls until the *array* is idle (ARDY), for cache-read sequencing where
/// RDY alone stays high.
async fn wait_ready_cached(ctx: &OpCtx, t: &Target) -> u8 {
    loop {
        let status = read_status(ctx, t).await;
        if status & Status::ARDY != 0 {
            return status;
        }
        if !ctx.poll_backoff().is_zero() {
            ctx.sleep(ctx.poll_backoff()).await;
        }
    }
}

/// Multi-plane READ: queue a fetch on one plane (0x32), confirm on the
/// other (0x30); both tRs overlap, then each plane's data is selected with
/// RANDOM DATA OUT and streamed.
pub async fn multi_plane_read(
    ctx: &OpCtx,
    t: &Target,
    rows: [RowAddr; 2],
    len: usize,
    dests: [u64; 2],
) -> Result<(), OpError> {
    // Queue plane 0.
    let addr0 = t.layout.pack_full(ColumnAddr(0), rows[0]);
    let queue = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr0),
            Latch::Cmd(op::MULTI_PLANE_NEXT),
        ],
        PostWait::Wb,
    );
    ctx.submit(queue).await;
    wait_ready(ctx, t).await; // short tDBSY window
                              // Confirm with plane 1: both fetches run concurrently.
    let addr1 = t.layout.pack_full(ColumnAddr(0), rows[1]);
    let confirm = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::READ_1),
            Latch::Addr(addr1),
            Latch::Cmd(op::READ_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(confirm).await;
    wait_ready(ctx, t).await;
    // Stream each plane via RANDOM DATA OUT plane selection.
    for (i, row) in rows.iter().enumerate() {
        let sel = t.layout.pack_full(ColumnAddr(0), *row);
        let fetch = Transaction::new(t.mask())
            .ca(
                vec![
                    Latch::Cmd(op::RANDOM_DATA_OUT_1),
                    Latch::Addr(sel),
                    Latch::Cmd(op::CHANGE_READ_COL_2),
                ],
                PostWait::Ccs,
            )
            .read(len, DmaDest::Dram(dests[i]));
        ctx.submit(fetch).await;
    }
    ctx.step();
    Ok(())
}

/// Erase with suspend window (Kim et al., ATC'19; Wu & He, FAST'12): starts
/// a block erase, and if `urgent_read` arrives conceptually mid-erase,
/// suspends the erase, serves the read, then resumes. Demonstrates how
/// BABOL encodes operations that rigid hardware controllers cannot.
pub async fn erase_with_suspended_read(
    ctx: &OpCtx,
    t: &Target,
    erase_row: RowAddr,
    read_row: RowAddr,
    read_len: usize,
    read_dest: u64,
) -> Result<(), OpError> {
    // Kick off the erase.
    let addr = t.layout.pack_row(erase_row);
    let kick = Transaction::new(t.mask()).ca(
        vec![
            Latch::Cmd(op::ERASE_1),
            Latch::Addr(addr),
            Latch::Cmd(op::ERASE_2),
        ],
        PostWait::Wb,
    );
    ctx.submit(kick).await;
    // Give the erase a head start, then suspend it.
    ctx.sleep(SimDuration::from_micros(100)).await;
    let susp = Transaction::new(t.mask()).ca(vec![Latch::Cmd(op::ERASE_SUSPEND)], PostWait::Wb);
    ctx.submit(susp).await;
    wait_ready(ctx, t).await;
    // Serve the urgent read while the erase is parked.
    read_page(ctx, t, read_row, 0, read_len, read_dest).await?;
    // Resume and finish the erase.
    let resume = Transaction::new(t.mask()).ca(vec![Latch::Cmd(op::SUSPEND_RESUME)], PostWait::Wb);
    ctx.submit(resume).await;
    let status = wait_ready(ctx, t).await;
    ctx.step();
    if status & Status::FAIL != 0 {
        return Err(OpError::Failed { status });
    }
    Ok(())
}

//! Task and transaction scheduling policies.
//!
//! "BABOL does not mandate or enforce any objective for these schedulers...
//! It is the job of an SSD Architect to make decisions about scheduling
//! strategy" (paper §V). Policies here are deliberately small, pluggable
//! values: the task scheduler picks which admitted operation runs next; the
//! transaction scheduler picks which built transaction is pushed to the
//! hardware instruction queue next.

/// Metadata a policy can see about a runnable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMeta {
    /// The LUN the task's operation targets.
    pub lun: u32,
    /// Task priority (higher runs first under the priority policy).
    pub priority: u8,
}

/// Which runnable task gets the CPU next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskPolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Fair rotation across LUNs (the paper's "simple version ... implement
    /// fair scheduling among the running operations").
    RoundRobinLun,
    /// Highest priority first; FIFO among equals (the paper's example of
    /// prioritizing latency-sensitive workloads such as database logging).
    Priority,
}

/// Circular distance from the LUN after `last_lun` to `lun`, over the full
/// `u32` space. The candidate minimizing this is the next one in rotation.
/// Reducing the distance modulo a fixed constant (the old `% 64`) aliased
/// LUNs 64 apart onto the same key, so geometries with more than 64 LUNs —
/// or sparse LUN ids — starved whichever candidate lost the alias.
#[inline]
fn rotation_key(lun: u32, last_lun: u32) -> u32 {
    lun.wrapping_sub(last_lun.wrapping_add(1))
}

impl TaskPolicy {
    /// Picks the index of the next task from `candidates`; `last_lun` is the
    /// LUN served by the previous pick (for rotation). Returns `None` when
    /// `candidates` is empty — a drained runnable set is a normal state
    /// between completions, not a controller bug.
    pub fn pick(&self, candidates: &[TaskMeta], last_lun: u32) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        Some(match self {
            TaskPolicy::Fifo => 0,
            TaskPolicy::RoundRobinLun => {
                // First candidate whose LUN is strictly "after" the last
                // served LUN in circular order.
                let mut best = 0usize;
                let mut best_key = u32::MAX;
                for (i, c) in candidates.iter().enumerate() {
                    let key = rotation_key(c.lun, last_lun);
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                best
            }
            TaskPolicy::Priority => {
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.priority > candidates[best].priority {
                        best = i;
                    }
                }
                best
            }
        })
    }
}

/// Metadata a policy can see about a built transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnMeta {
    /// Target LUN.
    pub lun: u32,
    /// Data bytes the transaction moves (0 for pure command segments).
    pub data_bytes: usize,
    /// Priority inherited from the owning task.
    pub priority: u8,
}

/// Which built transaction is pushed to the hardware queue next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnPolicy {
    /// First built, first issued.
    #[default]
    Fifo,
    /// Rotate across LUNs (the paper's "simple version of this scheduler can
    /// implement a round-robin approach").
    RoundRobinLun,
    /// Prefer command segments over bulk data: starts array work (tR) on
    /// idle LUNs before occupying the bus for a long transfer.
    CommandsFirst,
    /// Highest priority first (the paper's "more advanced transaction
    /// scheduler could prioritize commands for different LUNs").
    Priority,
}

impl TxnPolicy {
    /// Picks the index of the next transaction from `candidates`; `None`
    /// when the pending set is empty.
    pub fn pick(&self, candidates: &[TxnMeta], last_lun: u32) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        Some(match self {
            TxnPolicy::Fifo => 0,
            TxnPolicy::RoundRobinLun => {
                let mut best = 0usize;
                let mut best_key = u32::MAX;
                for (i, c) in candidates.iter().enumerate() {
                    let key = rotation_key(c.lun, last_lun);
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                best
            }
            TxnPolicy::CommandsFirst => {
                // Smallest data footprint first; FIFO among equals.
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.data_bytes < candidates[best].data_bytes {
                        best = i;
                    }
                }
                best
            }
            TxnPolicy::Priority => {
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.priority > candidates[best].priority {
                        best = i;
                    }
                }
                best
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(lun: u32) -> TaskMeta {
        TaskMeta { lun, priority: 0 }
    }

    #[test]
    fn fifo_takes_head() {
        assert_eq!(TaskPolicy::Fifo.pick(&[t(3), t(1)], 0), Some(0));
        let x = TxnMeta {
            lun: 0,
            data_bytes: 9,
            priority: 0,
        };
        assert_eq!(TxnPolicy::Fifo.pick(&[x, x], 5), Some(0));
    }

    #[test]
    fn round_robin_rotates() {
        let cands = [t(0), t(1), t(2)];
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 0), Some(1));
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 2), Some(0));
        // Missing LUN wraps to the next present one.
        let cands = [t(0), t(5)];
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 1), Some(1));
    }

    /// Regression: rotation must use the full u32 circular distance. The
    /// old key reduced distances `% 64`, aliasing LUN ids 64 apart (64 ≡ 0,
    /// 200 ≡ 8), so sparse ids were served out of rotation order and could
    /// be starved. Every assertion here involving ids 64/200 picked a
    /// different candidate under the pre-fix code.
    #[test]
    fn round_robin_handles_lun_ids_beyond_64() {
        let cands = [t(0), t(63), t(64), t(200)];
        // After LUN 0, the next id in circular order is 63 (the %64 key
        // aliased 200 to distance 7 and picked it instead).
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 0), Some(1));
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 63), Some(2));
        // After 64 comes 200 (the %64 key gave 200 the *worst* distance
        // and re-picked 63, starving LUN 200 indefinitely).
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 64), Some(3));
        // After the highest id, rotation wraps to the lowest.
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 200), Some(0));

        // The transaction scheduler shares the rotation key; same cases.
        let m = |lun| TxnMeta {
            lun,
            data_bytes: 0,
            priority: 0,
        };
        let cands = [m(0), m(63), m(64), m(200)];
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 0), Some(1));
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 63), Some(2));
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 64), Some(3));
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 200), Some(0));
    }

    /// The rotation key must also survive `last_lun = u32::MAX` (the old
    /// `last_lun + 1` overflowed in debug builds).
    #[test]
    fn round_robin_survives_max_lun() {
        let cands = [t(0), t(7)];
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, u32::MAX), Some(0));
    }

    #[test]
    fn priority_wins_and_fifo_breaks_ties() {
        let cands = [
            TaskMeta {
                lun: 0,
                priority: 1,
            },
            TaskMeta {
                lun: 1,
                priority: 3,
            },
            TaskMeta {
                lun: 2,
                priority: 3,
            },
        ];
        assert_eq!(TaskPolicy::Priority.pick(&cands, 0), Some(1));
    }

    #[test]
    fn commands_first_prefers_small_segments() {
        let cands = [
            TxnMeta {
                lun: 0,
                data_bytes: 16384,
                priority: 0,
            },
            TxnMeta {
                lun: 1,
                data_bytes: 0,
                priority: 0,
            },
            TxnMeta {
                lun: 2,
                data_bytes: 1,
                priority: 0,
            },
        ];
        assert_eq!(TxnPolicy::CommandsFirst.pick(&cands, 0), Some(1));
    }

    #[test]
    fn txn_round_robin_rotates() {
        let m = |lun| TxnMeta {
            lun,
            data_bytes: 0,
            priority: 0,
        };
        let cands = [m(0), m(4), m(7)];
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 4), Some(2));
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 7), Some(0));
    }

    /// An empty candidate set is answered with `None`, never a panic: the
    /// runnable queue legitimately drains while ops wait on the array.
    #[test]
    fn empty_candidates_yield_none() {
        for p in [
            TaskPolicy::Fifo,
            TaskPolicy::RoundRobinLun,
            TaskPolicy::Priority,
        ] {
            assert_eq!(p.pick(&[], 0), None);
        }
        for p in [
            TxnPolicy::Fifo,
            TxnPolicy::RoundRobinLun,
            TxnPolicy::CommandsFirst,
            TxnPolicy::Priority,
        ] {
            assert_eq!(p.pick(&[], 9), None);
        }
    }
}

//! Task and transaction scheduling policies.
//!
//! "BABOL does not mandate or enforce any objective for these schedulers...
//! It is the job of an SSD Architect to make decisions about scheduling
//! strategy" (paper §V). Policies here are deliberately small, pluggable
//! values: the task scheduler picks which admitted operation runs next; the
//! transaction scheduler picks which built transaction is pushed to the
//! hardware instruction queue next.

/// Metadata a policy can see about a runnable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMeta {
    /// The LUN the task's operation targets.
    pub lun: u32,
    /// Task priority (higher runs first under the priority policy).
    pub priority: u8,
}

/// Which runnable task gets the CPU next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskPolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Fair rotation across LUNs (the paper's "simple version ... implement
    /// fair scheduling among the running operations").
    RoundRobinLun,
    /// Highest priority first; FIFO among equals (the paper's example of
    /// prioritizing latency-sensitive workloads such as database logging).
    Priority,
}

impl TaskPolicy {
    /// Picks the index of the next task from `candidates`; `last_lun` is the
    /// LUN served by the previous pick (for rotation).
    pub fn pick(&self, candidates: &[TaskMeta], last_lun: u32) -> usize {
        assert!(!candidates.is_empty(), "no runnable task");
        match self {
            TaskPolicy::Fifo => 0,
            TaskPolicy::RoundRobinLun => {
                // First candidate whose LUN is strictly "after" the last
                // served LUN in circular order.
                let mut best = 0usize;
                let mut best_key = u32::MAX;
                for (i, c) in candidates.iter().enumerate() {
                    let key = (c.lun.wrapping_sub(last_lun + 1)) % 64;
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                best
            }
            TaskPolicy::Priority => {
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.priority > candidates[best].priority {
                        best = i;
                    }
                }
                best
            }
        }
    }
}

/// Metadata a policy can see about a built transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnMeta {
    /// Target LUN.
    pub lun: u32,
    /// Data bytes the transaction moves (0 for pure command segments).
    pub data_bytes: usize,
    /// Priority inherited from the owning task.
    pub priority: u8,
}

/// Which built transaction is pushed to the hardware queue next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnPolicy {
    /// First built, first issued.
    #[default]
    Fifo,
    /// Rotate across LUNs (the paper's "simple version of this scheduler can
    /// implement a round-robin approach").
    RoundRobinLun,
    /// Prefer command segments over bulk data: starts array work (tR) on
    /// idle LUNs before occupying the bus for a long transfer.
    CommandsFirst,
    /// Highest priority first (the paper's "more advanced transaction
    /// scheduler could prioritize commands for different LUNs").
    Priority,
}

impl TxnPolicy {
    /// Picks the index of the next transaction from `candidates`.
    pub fn pick(&self, candidates: &[TxnMeta], last_lun: u32) -> usize {
        assert!(!candidates.is_empty(), "no pending transaction");
        match self {
            TxnPolicy::Fifo => 0,
            TxnPolicy::RoundRobinLun => {
                let mut best = 0usize;
                let mut best_key = u32::MAX;
                for (i, c) in candidates.iter().enumerate() {
                    let key = (c.lun.wrapping_sub(last_lun + 1)) % 64;
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                best
            }
            TxnPolicy::CommandsFirst => {
                // Smallest data footprint first; FIFO among equals.
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.data_bytes < candidates[best].data_bytes {
                        best = i;
                    }
                }
                best
            }
            TxnPolicy::Priority => {
                let mut best = 0usize;
                for (i, c) in candidates.iter().enumerate() {
                    if c.priority > candidates[best].priority {
                        best = i;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(lun: u32) -> TaskMeta {
        TaskMeta { lun, priority: 0 }
    }

    #[test]
    fn fifo_takes_head() {
        assert_eq!(TaskPolicy::Fifo.pick(&[t(3), t(1)], 0), 0);
        let x = TxnMeta {
            lun: 0,
            data_bytes: 9,
            priority: 0,
        };
        assert_eq!(TxnPolicy::Fifo.pick(&[x, x], 5), 0);
    }

    #[test]
    fn round_robin_rotates() {
        let cands = [t(0), t(1), t(2)];
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 0), 1);
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 2), 0);
        // Missing LUN wraps to the next present one.
        let cands = [t(0), t(5)];
        assert_eq!(TaskPolicy::RoundRobinLun.pick(&cands, 1), 1);
    }

    #[test]
    fn priority_wins_and_fifo_breaks_ties() {
        let cands = [
            TaskMeta {
                lun: 0,
                priority: 1,
            },
            TaskMeta {
                lun: 1,
                priority: 3,
            },
            TaskMeta {
                lun: 2,
                priority: 3,
            },
        ];
        assert_eq!(TaskPolicy::Priority.pick(&cands, 0), 1);
    }

    #[test]
    fn commands_first_prefers_small_segments() {
        let cands = [
            TxnMeta {
                lun: 0,
                data_bytes: 16384,
                priority: 0,
            },
            TxnMeta {
                lun: 1,
                data_bytes: 0,
                priority: 0,
            },
            TxnMeta {
                lun: 2,
                data_bytes: 1,
                priority: 0,
            },
        ];
        assert_eq!(TxnPolicy::CommandsFirst.pick(&cands, 0), 1);
    }

    #[test]
    fn txn_round_robin_rotates() {
        let m = |lun| TxnMeta {
            lun,
            data_bytes: 0,
            priority: 0,
        };
        let cands = [m(0), m(4), m(7)];
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 4), 2);
        assert_eq!(TxnPolicy::RoundRobinLun.pick(&cands, 7), 0);
    }

    #[test]
    #[should_panic(expected = "no runnable task")]
    fn empty_candidates_panics() {
        TaskPolicy::Fifo.pick(&[], 0);
    }
}

//! The asynchronous hardware baseline (Cosmos+-style).
//!
//! A fixed-function NAND controller: per-LUN request engines advance through
//! a hard-coded operation pipeline (latch → R/B# wait → status check → data
//! move), an arbiter grants the shared bus round-robin, and every waveform
//! is constructed by dedicated logic — no software anywhere, which is
//! precisely why adding a new operation variant means respinning hardware
//! (paper §II, Discussion).
//!
//! The `@loc:` markers bracket the hard-coded implementation of each
//! operation (waveform construction plus pipeline control), counted by
//! Table II's reproduction alongside BABOL's software operations.

use std::collections::VecDeque;

use babol_onfi::addr::{AddrLayout, ColumnAddr, RowAddr};
use babol_onfi::bus::{BusPhase, ChipMask, PhaseKind};
use babol_onfi::opcode::op;
use babol_onfi::status::Status;
use babol_sim::{SimDuration, SimTime};
use babol_ufsm::EmitConfig;

use crate::system::{Controller, Event, IoKind, IoRequest, System};

/// Per-LUN engine state: one operation in flight per LUN, as on the
/// original platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineState {
    Idle,
    WantLatch,
    LatchOnBus,
    WaitRb,
    WantStatus,
    StatusOnBus,
    WantData,
    DataOnBus,
}

#[derive(Debug)]
struct Engine {
    state: EngineState,
    current: Option<IoRequest>,
    last_status: u8,
}

impl Engine {
    fn wants_bus(&self) -> bool {
        matches!(
            self.state,
            EngineState::WantLatch | EngineState::WantStatus | EngineState::WantData
        )
    }
}

/// The asynchronous hardware controller.
pub struct CosmosController {
    layout: AddrLayout,
    engines: Vec<Engine>,
    queues: Vec<VecDeque<IoRequest>>,
    queue_cap: usize,
    rr: u32,
    arb_gap: SimDuration,
    in_flight: Option<u32>,
    done: Vec<(IoRequest, SimTime)>,
    /// Requests that completed with FAIL status.
    pub failures: Vec<IoRequest>,
}

impl CosmosController {
    /// Builds the controller for a channel with `luns` LUNs.
    pub fn new(layout: AddrLayout, luns: u32) -> Self {
        CosmosController {
            layout,
            engines: (0..luns)
                .map(|_| Engine {
                    state: EngineState::Idle,
                    current: None,
                    last_status: 0,
                })
                .collect(),
            queues: vec![VecDeque::new(); luns as usize],
            queue_cap: 8,
            rr: 0,
            // One arbitration grant: request sampling, grant propagation and
            // engine reconfiguration at the platform's controller clock.
            arb_gap: SimDuration::from_nanos(500),
            in_flight: None,
            done: Vec::new(),
            failures: Vec::new(),
        }
    }

    fn load_next(&mut self, lun: u32) {
        let e = &mut self.engines[lun as usize];
        if e.state == EngineState::Idle {
            if let Some(req) = self.queues[lun as usize].pop_front() {
                e.current = Some(req);
                e.state = EngineState::WantLatch;
            }
        }
    }

    /// The bus arbiter: grants the channel to the next engine that wants it,
    /// round-robin from the last grant.
    fn arbitrate(&mut self, sys: &mut System) {
        if self.in_flight.is_some() {
            return;
        }
        let n = self.engines.len() as u32;
        let Some(lun) = (0..n)
            .map(|i| (self.rr + 1 + i) % n)
            .find(|&l| self.engines[l as usize].wants_bus())
        else {
            return;
        };
        self.rr = lun;
        let start = sys.now.max(sys.channel.busy_until()) + self.arb_gap;
        let req = self.engines[lun as usize]
            .current
            .expect("engine wanting bus has a request");
        let (phases, next) = match self.engines[lun as usize].state {
            EngineState::WantLatch => {
                let row = RowAddr { lun: req.lun, block: req.block, page: req.page };
                let phases = match req.kind {
                    // @loc:hw_async_read:begin
                    IoKind::Read => build_read_latch_phases(&self.layout, &sys.emit, row),
                    // @loc:hw_async_read:end
                    // @loc:hw_async_erase:begin
                    IoKind::Erase => build_erase_phases(&self.layout, &sys.emit, row),
                    // @loc:hw_async_erase:end
                    // @loc:hw_async_program:begin
                    IoKind::Program => {
                        // The DMA engine prefetches the payload from DRAM as
                        // the waveform is constructed.
                        let data = sys.dram.read_vec(req.dram_addr, req.len);
                        build_program_phases(&self.layout, &sys.emit, &req, &data)
                    }
                    // @loc:hw_async_program:end
                };
                (phases, EngineState::LatchOnBus)
            }
            EngineState::WantStatus => {
                (build_status_phases(&sys.emit), EngineState::StatusOnBus)
            }
            // @loc:hw_async_read:begin
            EngineState::WantData => (
                build_read_data_phases(&sys.emit, req.len),
                EngineState::DataOnBus,
            ),
            // @loc:hw_async_read:end
            other => unreachable!("state {other:?} does not want the bus"),
        };
        let tx = sys
            .channel
            .transmit(start, ChipMask::single(lun), &phases)
            .unwrap_or_else(|e| panic!("hardware waveform rejected: {e}"));
        // The DMA engine lands read data in DRAM as it streams.
        if next == EngineState::DataOnBus {
            sys.dram.write(req.dram_addr, &tx.data);
        }
        if next == EngineState::StatusOnBus {
            // Remember the sampled status byte for the completion handler.
            self.engines[lun as usize].last_status = tx.data.first().copied().unwrap_or(0);
        }
        self.engines[lun as usize].state = next;
        self.in_flight = Some(lun);
        sys.schedule(tx.end, Event::TxnDone { ticket: lun as u64 });
    }

    fn on_txn_done(&mut self, sys: &mut System, lun: u32) {
        debug_assert_eq!(self.in_flight, Some(lun));
        self.in_flight = None;
        let req = self.engines[lun as usize]
            .current
            .expect("txn for engine without request");
        let state = self.engines[lun as usize].state;
        match state {
            EngineState::LatchOnBus => {
                // The confirm cycle started an array operation: watch R/B#.
                self.engines[lun as usize].state = EngineState::WaitRb;
                match sys.channel.lun(lun).busy_until() {
                    Some(at) if at > sys.now => sys.schedule(at, Event::RbEdge { lun }),
                    _ => sys.schedule(sys.now, Event::RbEdge { lun }),
                }
            }
            // @loc:hw_async_read:begin
            EngineState::StatusOnBus => {
                let status = self.engines[lun as usize].last_status;
                if status & Status::RDY == 0 {
                    // Spurious edge; sample again.
                    self.engines[lun as usize].state = EngineState::WantStatus;
                } else if status & Status::FAIL != 0 {
                    self.failures.push(req);
                    self.complete(sys, lun, req);
                } else if req.kind == IoKind::Read {
                    self.engines[lun as usize].state = EngineState::WantData;
                } else {
                    self.complete(sys, lun, req);
                }
            }
            EngineState::DataOnBus => self.complete(sys, lun, req),
            // @loc:hw_async_read:end
            other => unreachable!("completion in state {other:?}"),
        }
        self.arbitrate(sys);
    }

    fn complete(&mut self, _sys: &mut System, lun: u32, req: IoRequest) {
        self.done.push((req, _sys.now));
        let e = &mut self.engines[lun as usize];
        e.current = None;
        e.state = EngineState::Idle;
        self.load_next(lun);
    }
}

impl Controller for CosmosController {
    fn name(&self) -> &'static str {
        "Cosmos-HW"
    }

    fn submit(&mut self, sys: &mut System, req: IoRequest) -> bool {
        let lun = req.lun as usize;
        if self.queues[lun].len() >= self.queue_cap {
            return false;
        }
        self.queues[lun].push_back(req);
        self.load_next(req.lun);
        sys.schedule(sys.now, Event::IssueCheck);
        true
    }

    fn on_event(&mut self, sys: &mut System, ev: Event) {
        match ev {
            Event::TxnDone { ticket } => self.on_txn_done(sys, ticket as u32),
            Event::RbEdge { lun } => {
                if self.engines[lun as usize].state == EngineState::WaitRb {
                    self.engines[lun as usize].state = EngineState::WantStatus;
                }
                self.arbitrate(sys);
            }
            Event::IssueCheck | Event::CpuDone | Event::Timer { .. } => self.arbitrate(sys),
        }
    }

    fn take_completions(&mut self, out: &mut Vec<(IoRequest, SimTime)>) {
        out.append(&mut self.done);
    }

    fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>()
            + self.engines.iter().filter(|e| e.current.is_some()).count()
    }
}

// -------------------------------------------------- hard-coded waveforms

// @loc:hw_async_read:begin
/// Hard-coded READ command/address waveform: every phase and every timing
/// component spelled out, as the fixed-function engine's RTL would.
fn build_read_latch_phases(
    layout: &AddrLayout,
    emit: &EmitConfig,
    row: RowAddr,
) -> Vec<BusPhase> {
    let mut phases = Vec::with_capacity(4);
    // Command cycle 0x00: CE setup + CLE window + one WE strobe + holds.
    let cmd_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle()
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::READ_1), cmd_len));
    // Five address cycles: CE setup + ALE window + five WE strobes + holds.
    let addr_bytes = layout.pack_full(ColumnAddr(0), row);
    let addr_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle() * addr_bytes.len() as u64
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::AddrLatch(addr_bytes), addr_len));
    // Confirm cycle 0x30 starts the array fetch.
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::READ_2), cmd_len));
    // The engine holds the bus for tWB before releasing (R/B# reaction).
    phases.push(BusPhase::new(PhaseKind::Pause, emit.timing.t_wb));
    phases
}

/// Hard-coded READ data movement: the DMA engine drains the page register
/// in fixed packets, re-arming its descriptor between packets.
fn build_read_data_phases(emit: &EmitConfig, len: usize) -> Vec<BusPhase> {
    let mut phases = Vec::with_capacity(2 + 2 * len / emit.packetizer.packet_bytes);
    // Column select to offset 0: 0x05 + two column cycles + 0xE0 + tCCS.
    let cmd_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle()
        + emit.timing.t_calh
        + emit.timing.t_ch;
    let col_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle() * 2
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(
        PhaseKind::CmdLatch(op::CHANGE_READ_COL_1),
        cmd_len,
    ));
    phases.push(BusPhase::new(PhaseKind::AddrLatch(vec![0, 0]), col_len));
    phases.push(BusPhase::new(
        PhaseKind::CmdLatch(op::CHANGE_READ_COL_2),
        cmd_len,
    ));
    phases.push(BusPhase::new(PhaseKind::Pause, emit.timing.t_ccs));
    // Packetized burst: descriptor fetch gap, then DQS-paced data.
    let mut remaining = len;
    while remaining > 0 {
        let pkt = remaining.min(emit.packetizer.packet_bytes);
        phases.push(BusPhase::new(PhaseKind::Pause, emit.packetizer.packet_gap));
        let burst = emit.timing.t_rpre
            + emit.iface.data_cycle() * pkt as u64
            + emit.timing.t_rpst;
        phases.push(BusPhase::new(PhaseKind::DataOut { bytes: pkt }, burst));
        remaining -= pkt;
    }
    phases
}
// @loc:hw_async_read:end

// @loc:hw_async_program:begin
/// Hard-coded PROGRAM waveform: address latch, packetized data-in bursts,
/// confirm cycle. The data is fetched from DRAM by the DMA engine while the
/// waveform runs.
fn build_program_phases(
    layout: &AddrLayout,
    emit: &EmitConfig,
    req: &IoRequest,
    sys_data: &[u8],
) -> Vec<BusPhase> {
    let mut phases = Vec::with_capacity(4 + 2 * req.len / emit.packetizer.packet_bytes);
    let cmd_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle()
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::PROGRAM_1), cmd_len));
    let row = RowAddr { lun: req.lun, block: req.block, page: req.page };
    let addr_bytes = layout.pack_full(ColumnAddr(0), row);
    let addr_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle() * addr_bytes.len() as u64
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::AddrLatch(addr_bytes), addr_len));
    phases.push(BusPhase::new(PhaseKind::Pause, emit.timing.t_adl));
    let mut offset = 0usize;
    while offset < req.len {
        let pkt = (req.len - offset).min(emit.packetizer.packet_bytes);
        phases.push(BusPhase::new(PhaseKind::Pause, emit.packetizer.packet_gap));
        let burst = emit.timing.t_wpre
            + emit.iface.data_cycle() * pkt as u64
            + emit.timing.t_wpst;
        phases.push(BusPhase::new(
            PhaseKind::DataIn(sys_data[offset..offset + pkt].to_vec().into()),
            burst,
        ));
        offset += pkt;
    }
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::PROGRAM_2), cmd_len));
    phases.push(BusPhase::new(PhaseKind::Pause, emit.timing.t_wb));
    phases
}
// @loc:hw_async_program:end

// @loc:hw_async_erase:begin
/// Hard-coded ERASE waveform: command, three row-address cycles, confirm.
fn build_erase_phases(layout: &AddrLayout, emit: &EmitConfig, row: RowAddr) -> Vec<BusPhase> {
    let mut phases = Vec::with_capacity(3);
    let cmd_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle()
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::ERASE_1), cmd_len));
    let addr_bytes = layout.pack_row(row);
    let addr_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle() * addr_bytes.len() as u64
        + emit.timing.t_calh
        + emit.timing.t_ch;
    phases.push(BusPhase::new(PhaseKind::AddrLatch(addr_bytes), addr_len));
    phases.push(BusPhase::new(PhaseKind::CmdLatch(op::ERASE_2), cmd_len));
    phases.push(BusPhase::new(PhaseKind::Pause, emit.timing.t_wb));
    phases
}
// @loc:hw_async_erase:end

/// Status sampling waveform. Shared by every operation's pipeline, so it
/// counts toward each operation's hard-coded implementation.
// @loc:hw_async_read:begin @loc:hw_async_program:begin @loc:hw_async_erase:begin
fn build_status_phases(emit: &EmitConfig) -> Vec<BusPhase> {
    let cmd_len = emit.timing.t_cs
        + emit.timing.t_cals
        + emit.iface.ca_cycle()
        + emit.timing.t_calh
        + emit.timing.t_ch;
    vec![
        BusPhase::new(PhaseKind::CmdLatch(op::READ_STATUS), cmd_len),
        BusPhase::new(PhaseKind::Pause, emit.timing.t_whr),
        BusPhase::new(
            PhaseKind::DataOut { bytes: 1 },
            emit.timing.t_rpre + emit.iface.data_cycle() + emit.timing.t_rpst,
        ),
    ]
}
// @loc:hw_async_read:end @loc:hw_async_program:end @loc:hw_async_erase:end

// ------------------------------------------------------- lint surface

/// The complete hard-coded waveform program this controller would put on
/// the bus for `req`, one `Vec<BusPhase>` per bus tenure, in pipeline
/// order (latch, status sample, data movement). `prog_data` is the DMA
/// prefetch payload for program requests (ignored otherwise).
///
/// This exists for the static verifier: `ufsm_lint` feeds these phase
/// lists to `babol_verify::Verifier::check_phases`, so the baseline's
/// frozen waveforms are linted against the same ONFI rules as BABOL's
/// software operations. Not used on the simulation path.
pub fn lint_phase_program(
    layout: &AddrLayout,
    emit: &EmitConfig,
    req: &IoRequest,
    prog_data: &[u8],
) -> Vec<Vec<BusPhase>> {
    let row = RowAddr { lun: req.lun, block: req.block, page: req.page };
    match req.kind {
        IoKind::Read => vec![
            build_read_latch_phases(layout, emit, row),
            build_status_phases(emit),
            build_read_data_phases(emit, req.len),
        ],
        IoKind::Program => vec![
            build_program_phases(layout, emit, req, prog_data),
            build_status_phases(emit),
        ],
        IoKind::Erase => vec![
            build_erase_phases(layout, emit, row),
            build_status_phases(emit),
        ],
    }
}

//! The hardware-baseline controllers.
//!
//! The paper evaluates BABOL against two hardware-only designs:
//!
//! * [`cosmos`] — an *asynchronous* controller in the style of the Cosmos+
//!   OpenSSD \[25\]: a shared engine with per-LUN request state, driven by the
//!   R/B# pins, with a fixed operation set baked into hardware. This is the
//!   "HW" baseline of Fig. 10 and the unmodified-Cosmos+ baseline of
//!   Fig. 12.
//! * [`sync_ctrl`] — a *synchronous* controller in the style of Qiu et
//!   al. \[50\] (paper Fig. 4): one full operation FSM per LUN, granted the
//!   channel by an arbiter, producing its waveform cycle by cycle. Verbose
//!   by construction — this is what Table II's per-operation line counts
//!   look like when waveforms are hard-coded.
//!
//! Both run with a zero-cost CPU model: their scheduling logic is dedicated
//! FPGA area (Table III shows what that area costs).

// Formatting of both baselines is frozen: their `@loc:` regions are a
// measured artifact (Table II line counts, see `babol_bench::loc`), and
// rustfmt reflow would silently change the measurement.
#[rustfmt::skip]
pub mod cosmos;
#[rustfmt::skip]
pub mod sync_ctrl;

pub use cosmos::CosmosController;
pub use sync_ctrl::SyncController;

//! The synchronous hardware baseline (Qiu et al.-style, paper Fig. 4).
//!
//! One full operation FSM per LUN, a hardware arbiter granting the channel,
//! and waveforms produced cycle group by cycle group from explicit states.
//! The FSMs below are transliterated from how such RTL is actually written:
//! every latch, every mandatory wait and every data packet is its own state,
//! with the timing arithmetic spelled out at each step. The verbosity is the
//! point — this is the development style whose effort the paper's Table II
//! quantifies, and which BABOL's two-page software operations replace.
//!
//! Scheduling-wise the design is *synchronous*: the arbiter reacts to the
//! channel becoming available and the granted FSM then "produces however
//! many transactions it can" before hitting a mandatory wait (§II). Grants
//! are costlier than on the asynchronous design because the winning FSM is
//! reconfigured from the request registers on every grant.

use std::collections::VecDeque;

use babol_onfi::addr::{AddrLayout, ColumnAddr, RowAddr};
use babol_onfi::bus::{BusPhase, ChipMask, PhaseKind};
use babol_onfi::opcode::op;
use babol_onfi::status::Status;
use babol_sim::{SimDuration, SimTime};
use babol_ufsm::EmitConfig;

use crate::system::{Controller, Event, IoKind, IoRequest, System};

/// Micro-states of the per-LUN operation FSM. Grouped by operation; each
/// bus-touching state emits exactly one waveform fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
enum OpState {
    Idle,
    // READ operation FSM ---------------------------------------------------
    // @loc:hw_sync_read:begin
    RdIssueCmd1,
    RdIssueAddr,
    RdIssueCmd2,
    RdHoldWb,
    RdWaitRb,
    RdIssueStatusCmd,
    RdHoldWhr,
    RdSampleStatus,
    RdCheckStatus,
    RdIssueCcCmd1,
    RdIssueCcAddr,
    RdIssueCcCmd2,
    RdHoldCcs,
    RdPacketGap,
    RdPacketBurst,
    RdDone,
    // @loc:hw_sync_read:end
    // PROGRAM operation FSM ------------------------------------------------
    // @loc:hw_sync_program:begin
    PgIssueCmd1,
    PgIssueAddr,
    PgHoldAdl,
    PgPacketGap,
    PgPacketBurst,
    PgIssueCmd2,
    PgHoldWb,
    PgWaitRb,
    PgIssueStatusCmd,
    PgHoldWhr,
    PgSampleStatus,
    PgCheckStatus,
    PgDone,
    // @loc:hw_sync_program:end
    // ERASE operation FSM --------------------------------------------------
    // @loc:hw_sync_erase:begin
    ErIssueCmd1,
    ErIssueAddr,
    ErIssueCmd2,
    ErHoldWb,
    ErWaitRb,
    ErIssueStatusCmd,
    ErHoldWhr,
    ErSampleStatus,
    ErCheckStatus,
    ErDone,
    // @loc:hw_sync_erase:end
}

/// What the FSM does in one step while granted the channel.
enum StepAction {
    /// Drive this fragment onto the bus, then go to `next`.
    Emit(BusPhase, OpState),
    /// Combinational transition (no bus activity).
    Decide(OpState),
    /// Release the channel and wait for this LUN's R/B# edge.
    ReleaseForRb,
    /// The operation is complete.
    Complete,
}

/// One per-LUN operation module (paper Fig. 4's `Operation_i`).
#[derive(Debug)]
struct OpFsm {
    state: OpState,
    req: Option<IoRequest>,
    status: u8,
    pkt_offset: usize,
}

impl OpFsm {
    fn new() -> Self {
        OpFsm { state: OpState::Idle, req: None, status: 0, pkt_offset: 0 }
    }

    fn wants_bus(&self) -> bool {
        !matches!(self.state, OpState::Idle | OpState::RdWaitRb | OpState::PgWaitRb | OpState::ErWaitRb)
            && self.req.is_some()
    }

    fn load(&mut self, req: IoRequest) {
        self.status = 0;
        self.pkt_offset = 0;
        self.state = match req.kind {
            IoKind::Read => OpState::RdIssueCmd1,
            IoKind::Program => OpState::PgIssueCmd1,
            IoKind::Erase => OpState::ErIssueCmd1,
        };
        self.req = Some(req);
    }

    /// One state transition. `prog_data` is the DMA prefetch buffer for
    /// program operations (valid while a program is loaded).
    fn step(&mut self, layout: &AddrLayout, emit: &EmitConfig, prog_data: &[u8]) -> StepAction {
        let req = self.req.expect("step without a loaded request");
        let row = RowAddr { lun: req.lun, block: req.block, page: req.page };
        // Per-fragment timing, computed the way the RTL's counters would.
        let one_ca = emit.timing.t_cs
            + emit.timing.t_cals
            + emit.iface.ca_cycle()
            + emit.timing.t_calh
            + emit.timing.t_ch;
        let ca_n = |n: u64| {
            emit.timing.t_cs
                + emit.timing.t_cals
                + emit.iface.ca_cycle() * n
                + emit.timing.t_calh
                + emit.timing.t_ch
        };
        match self.state {
            OpState::Idle => StepAction::Complete,

            // ---------------- READ ------------------------------------ //
            // @loc:hw_sync_read:begin
            OpState::RdIssueCmd1 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::READ_1), one_ca),
                OpState::RdIssueAddr,
            ),
            OpState::RdIssueAddr => {
                let bytes = layout.pack_full(ColumnAddr(0), row);
                let len = ca_n(bytes.len() as u64);
                StepAction::Emit(
                    BusPhase::new(PhaseKind::AddrLatch(bytes), len),
                    OpState::RdIssueCmd2,
                )
            }
            OpState::RdIssueCmd2 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::READ_2), one_ca),
                OpState::RdHoldWb,
            ),
            OpState::RdHoldWb => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_wb),
                OpState::RdWaitRb,
            ),
            OpState::RdWaitRb => StepAction::ReleaseForRb,
            OpState::RdIssueStatusCmd => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::READ_STATUS), one_ca),
                OpState::RdHoldWhr,
            ),
            OpState::RdHoldWhr => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_whr),
                OpState::RdSampleStatus,
            ),
            OpState::RdSampleStatus => StepAction::Emit(
                BusPhase::new(
                    PhaseKind::DataOut { bytes: 1 },
                    emit.timing.t_rpre + emit.iface.data_cycle() + emit.timing.t_rpst,
                ),
                OpState::RdCheckStatus,
            ),
            OpState::RdCheckStatus => {
                if self.status & Status::RDY == 0 {
                    // Spurious wake: sample again.
                    StepAction::Decide(OpState::RdIssueStatusCmd)
                } else {
                    StepAction::Decide(OpState::RdIssueCcCmd1)
                }
            }
            OpState::RdIssueCcCmd1 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::CHANGE_READ_COL_1), one_ca),
                OpState::RdIssueCcAddr,
            ),
            OpState::RdIssueCcAddr => {
                let bytes = layout.pack_col(ColumnAddr(req.col));
                let len = ca_n(bytes.len() as u64);
                StepAction::Emit(
                    BusPhase::new(PhaseKind::AddrLatch(bytes), len),
                    OpState::RdIssueCcCmd2,
                )
            }
            OpState::RdIssueCcCmd2 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::CHANGE_READ_COL_2), one_ca),
                OpState::RdHoldCcs,
            ),
            OpState::RdHoldCcs => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_ccs),
                OpState::RdPacketGap,
            ),
            OpState::RdPacketGap => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.packetizer.packet_gap),
                OpState::RdPacketBurst,
            ),
            OpState::RdPacketBurst => {
                let pkt = (req.len - self.pkt_offset).min(emit.packetizer.packet_bytes);
                let burst = emit.timing.t_rpre
                    + emit.iface.data_cycle() * pkt as u64
                    + emit.timing.t_rpst;
                let next = if self.pkt_offset + pkt >= req.len {
                    OpState::RdDone
                } else {
                    OpState::RdPacketGap
                };
                self.pkt_offset += pkt;
                StepAction::Emit(BusPhase::new(PhaseKind::DataOut { bytes: pkt }, burst), next)
            }
            OpState::RdDone => StepAction::Complete,
            // @loc:hw_sync_read:end

            // ---------------- PROGRAM --------------------------------- //
            // @loc:hw_sync_program:begin
            OpState::PgIssueCmd1 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::PROGRAM_1), one_ca),
                OpState::PgIssueAddr,
            ),
            OpState::PgIssueAddr => {
                let bytes = layout.pack_full(ColumnAddr(0), row);
                let len = ca_n(bytes.len() as u64);
                StepAction::Emit(
                    BusPhase::new(PhaseKind::AddrLatch(bytes), len),
                    OpState::PgHoldAdl,
                )
            }
            OpState::PgHoldAdl => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_adl),
                OpState::PgPacketGap,
            ),
            OpState::PgPacketGap => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.packetizer.packet_gap),
                OpState::PgPacketBurst,
            ),
            OpState::PgPacketBurst => {
                let pkt = (req.len - self.pkt_offset).min(emit.packetizer.packet_bytes);
                let burst = emit.timing.t_wpre
                    + emit.iface.data_cycle() * pkt as u64
                    + emit.timing.t_wpst;
                let data = prog_data[self.pkt_offset..self.pkt_offset + pkt].to_vec();
                let next = if self.pkt_offset + pkt >= req.len {
                    OpState::PgIssueCmd2
                } else {
                    OpState::PgPacketGap
                };
                self.pkt_offset += pkt;
                StepAction::Emit(BusPhase::new(PhaseKind::DataIn(data.into()), burst), next)
            }
            OpState::PgIssueCmd2 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::PROGRAM_2), one_ca),
                OpState::PgHoldWb,
            ),
            OpState::PgHoldWb => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_wb),
                OpState::PgWaitRb,
            ),
            OpState::PgWaitRb => StepAction::ReleaseForRb,
            OpState::PgIssueStatusCmd => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::READ_STATUS), one_ca),
                OpState::PgHoldWhr,
            ),
            OpState::PgHoldWhr => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_whr),
                OpState::PgSampleStatus,
            ),
            OpState::PgSampleStatus => StepAction::Emit(
                BusPhase::new(
                    PhaseKind::DataOut { bytes: 1 },
                    emit.timing.t_rpre + emit.iface.data_cycle() + emit.timing.t_rpst,
                ),
                OpState::PgCheckStatus,
            ),
            OpState::PgCheckStatus => {
                if self.status & Status::RDY == 0 {
                    StepAction::Decide(OpState::PgIssueStatusCmd)
                } else {
                    StepAction::Decide(OpState::PgDone)
                }
            }
            OpState::PgDone => StepAction::Complete,
            // @loc:hw_sync_program:end

            // ---------------- ERASE ----------------------------------- //
            // @loc:hw_sync_erase:begin
            OpState::ErIssueCmd1 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::ERASE_1), one_ca),
                OpState::ErIssueAddr,
            ),
            OpState::ErIssueAddr => {
                let bytes = layout.pack_row(row);
                let len = ca_n(bytes.len() as u64);
                StepAction::Emit(
                    BusPhase::new(PhaseKind::AddrLatch(bytes), len),
                    OpState::ErIssueCmd2,
                )
            }
            OpState::ErIssueCmd2 => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::ERASE_2), one_ca),
                OpState::ErHoldWb,
            ),
            OpState::ErHoldWb => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_wb),
                OpState::ErWaitRb,
            ),
            OpState::ErWaitRb => StepAction::ReleaseForRb,
            OpState::ErIssueStatusCmd => StepAction::Emit(
                BusPhase::new(PhaseKind::CmdLatch(op::READ_STATUS), one_ca),
                OpState::ErHoldWhr,
            ),
            OpState::ErHoldWhr => StepAction::Emit(
                BusPhase::new(PhaseKind::Pause, emit.timing.t_whr),
                OpState::ErSampleStatus,
            ),
            OpState::ErSampleStatus => StepAction::Emit(
                BusPhase::new(
                    PhaseKind::DataOut { bytes: 1 },
                    emit.timing.t_rpre + emit.iface.data_cycle() + emit.timing.t_rpst,
                ),
                OpState::ErCheckStatus,
            ),
            OpState::ErCheckStatus => {
                if self.status & Status::RDY == 0 {
                    StepAction::Decide(OpState::ErIssueStatusCmd)
                } else {
                    StepAction::Decide(OpState::ErDone)
                }
            }
            OpState::ErDone => StepAction::Complete,
            // @loc:hw_sync_erase:end
        }
    }
}

/// The synchronous hardware controller.
pub struct SyncController {
    layout: AddrLayout,
    fsms: Vec<OpFsm>,
    queues: Vec<VecDeque<IoRequest>>,
    queue_cap: usize,
    rr: u32,
    grant_gap: SimDuration,
    bus_held_by: Option<u32>,
    done: Vec<(IoRequest, SimTime)>,
    /// Requests that completed with FAIL status.
    pub failures: Vec<IoRequest>,
}

impl SyncController {
    /// Builds the controller for a channel with `luns` LUNs.
    pub fn new(layout: AddrLayout, luns: u32) -> Self {
        SyncController {
            layout,
            fsms: (0..luns).map(|_| OpFsm::new()).collect(),
            queues: vec![VecDeque::new(); luns as usize],
            queue_cap: 8,
            rr: 0,
            // A grant reconfigures the winning operation module from the
            // request registers: costlier than the asynchronous design.
            grant_gap: SimDuration::from_nanos(900),
            bus_held_by: None,
            done: Vec::new(),
            failures: Vec::new(),
        }
    }

    fn load_next(&mut self, lun: u32) {
        if self.fsms[lun as usize].req.is_none() {
            if let Some(req) = self.queues[lun as usize].pop_front() {
                self.fsms[lun as usize].load(req);
            }
        }
    }

    /// Grants the channel to the next FSM that wants it and lets it run
    /// until it must wait for the array — "however many transactions it
    /// can" (§II).
    fn arbitrate(&mut self, sys: &mut System) {
        if self.bus_held_by.is_some() {
            return;
        }
        let n = self.fsms.len() as u32;
        let Some(lun) = (0..n)
            .map(|i| (self.rr + 1 + i) % n)
            .find(|&l| self.fsms[l as usize].wants_bus())
        else {
            return;
        };
        self.rr = lun;
        let req = self.fsms[lun as usize].req.expect("fsm with request");
        // DMA prefetch for programs (the data path of Fig. 4).
        let prog_data = if req.kind == IoKind::Program {
            sys.dram.read_vec(req.dram_addr, req.len)
        } else {
            Vec::new()
        };
        let mut cursor = sys.now.max(sys.channel.busy_until()) + self.grant_gap;
        let mut dram_off = 0u64;
        loop {
            let action = self.fsms[lun as usize].step(&self.layout, &sys.emit, &prog_data);
            match action {
                StepAction::Emit(phase, next) => {
                    let is_data_out = matches!(phase.kind, PhaseKind::DataOut { .. });
                    let is_status = next == OpState::RdCheckStatus
                        || next == OpState::PgCheckStatus
                        || next == OpState::ErCheckStatus;
                    let tx = sys
                        .channel
                        .transmit(cursor, ChipMask::single(lun), &[phase])
                        .unwrap_or_else(|e| panic!("hardware waveform rejected: {e}"));
                    cursor = tx.end;
                    if is_status {
                        self.fsms[lun as usize].status =
                            tx.data.first().copied().unwrap_or(0);
                    } else if is_data_out {
                        sys.dram.write(req.dram_addr + dram_off, &tx.data);
                        dram_off += tx.data.len() as u64;
                    }
                    self.fsms[lun as usize].state = next;
                }
                StepAction::Decide(next) => {
                    self.fsms[lun as usize].state = next;
                }
                StepAction::ReleaseForRb => {
                    self.bus_held_by = Some(lun);
                    sys.schedule(cursor, Event::TxnDone { ticket: lun as u64 });
                    return;
                }
                StepAction::Complete => {
                    self.bus_held_by = Some(lun);
                    sys.schedule(cursor, Event::TxnDone { ticket: lun as u64 });
                    return;
                }
            }
        }
    }

    fn on_txn_done(&mut self, sys: &mut System, lun: u32) {
        debug_assert_eq!(self.bus_held_by, Some(lun));
        self.bus_held_by = None;
        let state = self.fsms[lun as usize].state;
        match state {
            OpState::RdWaitRb | OpState::PgWaitRb | OpState::ErWaitRb => {
                match sys.channel.lun(lun).busy_until() {
                    Some(at) if at > sys.now => sys.schedule(at, Event::RbEdge { lun }),
                    _ => sys.schedule(sys.now, Event::RbEdge { lun }),
                }
            }
            OpState::RdDone | OpState::PgDone | OpState::ErDone => {
                let req = self.fsms[lun as usize].req.take().expect("done without req");
                if self.fsms[lun as usize].status & Status::FAIL != 0 {
                    self.failures.push(req);
                }
                self.fsms[lun as usize].state = OpState::Idle;
                self.done.push((req, sys.now));
                self.load_next(lun);
            }
            _ => {}
        }
        self.arbitrate(sys);
    }
}

impl Controller for SyncController {
    fn name(&self) -> &'static str {
        "Sync-HW"
    }

    fn submit(&mut self, sys: &mut System, req: IoRequest) -> bool {
        let lun = req.lun as usize;
        if self.queues[lun].len() >= self.queue_cap {
            return false;
        }
        self.queues[lun].push_back(req);
        self.load_next(req.lun);
        sys.schedule(sys.now, Event::IssueCheck);
        true
    }

    fn on_event(&mut self, sys: &mut System, ev: Event) {
        match ev {
            Event::TxnDone { ticket } => self.on_txn_done(sys, ticket as u32),
            Event::RbEdge { lun } => {
                let next = match self.fsms[lun as usize].state {
                    // @loc:hw_sync_read:begin
                    OpState::RdWaitRb => Some(OpState::RdIssueStatusCmd),
                    // @loc:hw_sync_read:end
                    // @loc:hw_sync_program:begin
                    OpState::PgWaitRb => Some(OpState::PgIssueStatusCmd),
                    // @loc:hw_sync_program:end
                    // @loc:hw_sync_erase:begin
                    OpState::ErWaitRb => Some(OpState::ErIssueStatusCmd),
                    // @loc:hw_sync_erase:end
                    _ => None,
                };
                if let Some(next) = next {
                    self.fsms[lun as usize].state = next;
                }
                self.arbitrate(sys);
            }
            Event::IssueCheck | Event::CpuDone | Event::Timer { .. } => self.arbitrate(sys),
        }
    }

    fn take_completions(&mut self, out: &mut Vec<(IoRequest, SimTime)>) {
        out.append(&mut self.done);
    }

    fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>()
            + self.fsms.iter().filter(|f| f.req.is_some()).count()
    }
}

// ------------------------------------------------------- lint surface

/// The complete waveform program the per-LUN FSM produces for `req`, one
/// `Vec<BusPhase>` per bus tenure (grant to release). `prog_data` is the
/// DMA prefetch payload for program requests (ignored otherwise).
///
/// Drives the real `OpFsm` state machine off-bus: R/B# waits release the
/// tenure, and the status sample is fed RDY|ARDY (what real hardware reads
/// once R/B# rose) so the check loop advances. The static verifier lints
/// the result via `babol_verify::Verifier::check_phases`; this is not used
/// on the simulation path.
pub fn lint_phase_program(
    layout: &AddrLayout,
    emit: &EmitConfig,
    req: &IoRequest,
    prog_data: &[u8],
) -> Vec<Vec<BusPhase>> {
    let mut fsm = OpFsm::new();
    fsm.load(*req);
    let mut tenures = Vec::new();
    let mut current: Vec<BusPhase> = Vec::new();
    loop {
        match fsm.step(layout, emit, prog_data) {
            StepAction::Emit(phase, next) => {
                let sampled_status = next == OpState::RdCheckStatus
                    || next == OpState::PgCheckStatus
                    || next == OpState::ErCheckStatus;
                current.push(phase);
                fsm.state = next;
                if sampled_status {
                    fsm.status = Status::RDY | Status::ARDY;
                }
            }
            StepAction::Decide(next) => fsm.state = next,
            StepAction::ReleaseForRb => {
                if !current.is_empty() {
                    tenures.push(std::mem::take(&mut current));
                }
                fsm.state = match fsm.state {
                    OpState::RdWaitRb => OpState::RdIssueStatusCmd,
                    OpState::PgWaitRb => OpState::PgIssueStatusCmd,
                    OpState::ErWaitRb => OpState::ErIssueStatusCmd,
                    other => other,
                };
            }
            StepAction::Complete => {
                if !current.is_empty() {
                    tenures.push(current);
                }
                return tenures;
            }
        }
    }
}

//! Package bring-up: reset, discovery, timing-mode switch, calibration.
//!
//! "Each package has unique booting, calibration, and initialization steps
//! that are not covered by ONFI. ... some packages boot in SDR data mode and
//! can only be reconfigured to faster data modes through that interface.
//! ... The controller may need to individually adjust the waveform phase
//! for each package" (paper §IV-C). This module is the software-defined
//! boot flow those observations call for:
//!
//! 1. RESET each LUN (in SDR mode 0, the only interface guaranteed after
//!    power-on) and wait for recovery;
//! 2. READ PARAMETER PAGE to discover geometry and supported speeds,
//!    validating the ONFI CRC across the redundant copies;
//! 3. SET FEATURES to raise the interface to NV-DDR2 at the requested rate;
//! 4. run the calibration tool: scan DQS drive phases until the parameter
//!    page reads back with a valid CRC at speed, then lock that phase in
//!    the pad registers.
//!
//! Boot is firmware, not datapath: it runs synchronously over the μFSM
//! engine with no scheduling subtleties, exactly as init code would.

use std::fmt;

use babol_onfi::opcode::op;
use babol_onfi::param_page::ParamPage;
use babol_onfi::status::Status;
use babol_ufsm::{execute, DmaDest, EmitConfig, Latch, PostWait, Transaction};

use babol_onfi::bus::ChipMask;

use crate::system::System;

/// The result of bringing up one LUN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LunBootReport {
    /// CE# index.
    pub chip: u32,
    /// Parsed parameter page.
    pub params: ParamPage,
    /// The DQS drive phase the calibration locked in.
    pub phase: u8,
    /// How many phase candidates were tried before locking.
    pub phases_tried: u8,
}

/// Boot failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootError {
    /// The parameter page was unreadable in every redundant copy.
    BadParamPage {
        /// CE# index of the failing LUN.
        chip: u32,
    },
    /// No DQS phase produced a valid high-speed read.
    CalibrationFailed {
        /// CE# index of the failing LUN.
        chip: u32,
    },
    /// The package does not support the requested transfer rate.
    UnsupportedRate {
        /// CE# index of the failing LUN.
        chip: u32,
        /// Requested rate (MT/s).
        requested: u32,
        /// The package's maximum (MT/s).
        supported: u16,
    },
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::BadParamPage { chip } => {
                write!(f, "chip {chip}: no valid parameter page copy")
            }
            BootError::CalibrationFailed { chip } => {
                write!(f, "chip {chip}: no DQS phase yields clean data")
            }
            BootError::UnsupportedRate {
                chip,
                requested,
                supported,
            } => write!(
                f,
                "chip {chip}: {requested} MT/s requested but package supports {supported}"
            ),
        }
    }
}

impl std::error::Error for BootError {}

/// Executes one transaction synchronously, advancing `sys.now` past its end.
fn run_txn(sys: &mut System, emit: &EmitConfig, txn: &Transaction) -> Vec<u8> {
    let start = sys.now.max(sys.channel.busy_until());
    let out = execute(&mut sys.channel, &mut sys.dram, emit, start, txn)
        .unwrap_or_else(|e| panic!("boot waveform rejected: {e}"));
    sys.now = out.end;
    out.inline
}

/// Polls READ STATUS until ready, advancing simulated time.
fn wait_ready(sys: &mut System, emit: &EmitConfig, chip: u32) {
    loop {
        let txn = Transaction::new(ChipMask::single(chip))
            .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
            .read(1, DmaDest::Inline);
        let data = run_txn(sys, emit, &txn);
        if data[0] & Status::RDY != 0 {
            return;
        }
        // Idle between polls, as init firmware would.
        sys.now += babol_sim::SimDuration::from_micros(2);
    }
}

/// Brings up one LUN to NV-DDR2 at `mts` and calibrates its DQS phase.
pub fn boot_lun(sys: &mut System, chip: u32, mts: u32) -> Result<LunBootReport, BootError> {
    let sdr = EmitConfig::sdr();

    // Step 1: RESET in SDR mode 0 and wait for recovery.
    let reset =
        Transaction::new(ChipMask::single(chip)).ca(vec![Latch::Cmd(op::RESET)], PostWait::Wb);
    run_txn(sys, &sdr, &reset);
    wait_ready(sys, &sdr, chip);

    // Step 2: READ PARAMETER PAGE (three redundant copies) over SDR.
    let kick = Transaction::new(ChipMask::single(chip)).ca(
        vec![Latch::Cmd(op::READ_PARAM_PAGE), Latch::Addr(vec![0x00])],
        PostWait::Wb,
    );
    run_txn(sys, &sdr, &kick);
    wait_ready(sys, &sdr, chip);
    let restore = Transaction::new(ChipMask::single(chip))
        .ca(vec![Latch::Cmd(op::READ_1)], PostWait::Whr)
        .read(256 * 3, DmaDest::Inline);
    let raw = run_txn(sys, &sdr, &restore);
    let params = (0..3)
        .filter_map(|i| ParamPage::from_bytes(&raw[i * 256..(i + 1) * 256]).ok())
        .next()
        .ok_or(BootError::BadParamPage { chip })?;
    if (params.max_mts as u32) < mts {
        return Err(BootError::UnsupportedRate {
            chip,
            requested: mts,
            supported: params.max_mts,
        });
    }

    // Step 3: SET FEATURES to NV-DDR2. Mode 8 = 200 MT/s, mode 5 = 100 MT/s.
    let mode: u8 = match mts {
        200 => 8,
        166 => 7,
        133 => 6,
        100 => 5,
        _ => 5,
    };
    sys.dram.write(BOOT_SCRATCH, &[mode, 2, 0, 0]);
    let setf = Transaction::new(ChipMask::single(chip))
        .ca(
            vec![
                Latch::Cmd(op::SET_FEATURES),
                Latch::Addr(vec![babol_onfi::feature::addr::TIMING_MODE]),
            ],
            PostWait::Adl,
        )
        .write(4, BOOT_SCRATCH);
    run_txn(sys, &sdr, &setf);

    // Step 4: calibration — scan DQS phases until the parameter page reads
    // back with a valid CRC at full speed.
    let fast = EmitConfig::nv_ddr2(mts);
    let mut locked = None;
    let mut tried = 0u8;
    for phase in 0..8u8 {
        tried += 1;
        sys.channel.lun_mut(chip).set_drive_phase(phase);
        let kick = Transaction::new(ChipMask::single(chip)).ca(
            vec![Latch::Cmd(op::READ_PARAM_PAGE), Latch::Addr(vec![0x00])],
            PostWait::Wb,
        );
        run_txn(sys, &fast, &kick);
        wait_ready(sys, &fast, chip);
        let fetch = Transaction::new(ChipMask::single(chip))
            .ca(vec![Latch::Cmd(op::READ_1)], PostWait::Whr)
            .read(256, DmaDest::Inline);
        let raw = run_txn(sys, &fast, &fetch);
        if ParamPage::from_bytes(&raw).is_ok() {
            locked = Some(phase);
            break;
        }
    }
    let phase = locked.ok_or(BootError::CalibrationFailed { chip })?;
    Ok(LunBootReport {
        chip,
        params,
        phase,
        phases_tried: tried,
    })
}

/// DRAM scratch address used by boot-time SET FEATURES payloads.
const BOOT_SCRATCH: u64 = 0xB007_0000;

/// Boots every LUN on the channel to NV-DDR2 at `mts`.
pub fn boot_channel(sys: &mut System, mts: u32) -> Result<Vec<LunBootReport>, BootError> {
    (0..sys.channel.lun_count())
        .map(|chip| boot_lun(sys, chip, mts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use babol_channel::Channel;
    use babol_flash::array::ContentMode;
    use babol_flash::lun::LunConfig;
    use babol_flash::{Lun, PackageProfile};
    use babol_sim::{CostModel, Cpu, Freq};

    fn strict_system(n: usize) -> System {
        let luns = (0..n)
            .map(|i| {
                Lun::new(LunConfig {
                    profile: PackageProfile::test_tiny(),
                    content: ContentMode::Pristine,
                    seed: 1000 + i as u64,
                    inject_errors: false,
                    require_init: true, // enforce the full boot contract
                })
            })
            .collect();
        System::new(
            Channel::new(luns),
            EmitConfig::nv_ddr2(200),
            Cpu::new(Freq::from_ghz(1), CostModel::free()),
        )
    }

    #[test]
    fn boot_discovers_and_calibrates_every_lun() {
        let mut sys = strict_system(4);
        let reports = boot_channel(&mut sys, 200).expect("boot succeeds");
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.params.page_size as usize, 512);
            assert_eq!(
                r.phase,
                sys.channel.lun(r.chip).required_phase_for_tests(),
                "chip {} locked the wrong phase",
                r.chip
            );
        }
        // Phases differ across LUNs (different trace lengths), proving the
        // per-package calibration is doing real work.
        let phases: std::collections::BTreeSet<u8> = reports.iter().map(|r| r.phase).collect();
        assert!(phases.len() > 1, "phases {phases:?}");
    }

    #[test]
    fn boot_rejects_unsupported_rate() {
        let mut sys = strict_system(1);
        let err = boot_lun(&mut sys, 0, 400).unwrap_err();
        assert!(matches!(err, BootError::UnsupportedRate { .. }));
    }

    #[test]
    fn booted_lun_serves_high_speed_reads() {
        let mut sys = strict_system(1);
        boot_lun(&mut sys, 0, 200).unwrap();
        // After boot, a full read sequence at NV-DDR2 works and returns
        // clean (unscrambled) data.
        use babol_onfi::addr::{ColumnAddr, RowAddr};
        let layout = sys.channel.lun(0).profile().geometry.addr_layout(16);
        let row = RowAddr {
            lun: 0,
            block: 0,
            page: 0,
        };
        sys.channel
            .lun_mut(0)
            .array_mut()
            .program_page(row, b"booted!", false)
            .unwrap();
        let fast = EmitConfig::nv_ddr2(200);
        let addr = layout.pack_full(ColumnAddr(0), row);
        let latch = Transaction::new(ChipMask::single(0)).ca(
            vec![
                Latch::Cmd(op::READ_1),
                Latch::Addr(addr),
                Latch::Cmd(op::READ_2),
            ],
            PostWait::Wb,
        );
        run_txn(&mut sys, &fast, &latch);
        wait_ready(&mut sys, &fast, 0);
        let fetch = Transaction::new(ChipMask::single(0))
            .ca(
                vec![
                    Latch::Cmd(op::CHANGE_READ_COL_1),
                    Latch::Addr(layout.pack_col(ColumnAddr(0))),
                    Latch::Cmd(op::CHANGE_READ_COL_2),
                ],
                PostWait::Ccs,
            )
            .read(7, DmaDest::Inline);
        let data = run_txn(&mut sys, &fast, &fetch);
        assert_eq!(&data, b"booted!");
    }
}

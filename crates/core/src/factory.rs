//! Ready-made controller constructors.
//!
//! The experiments compare four controllers over identical workloads; these
//! helpers build each of them for a given package layout. The coroutine and
//! RTOS controllers translate every FTL request into the corresponding
//! operation from their libraries.

use babol_onfi::addr::AddrLayout;

use crate::ops::{self, Target};
use crate::runtime::coro::{CoroTask, OpCtx};
use crate::runtime::rtos::{EraseOp, ProgramOp, ReadOp, RtosTask};
use crate::runtime::{RuntimeConfig, SoftController, SoftTask};
use crate::system::{IoKind, IoRequest};

use babol_onfi::addr::RowAddr;

fn row_of(req: &IoRequest) -> RowAddr {
    RowAddr {
        lun: req.lun,
        block: req.block,
        page: req.page,
    }
}

/// Builds the coroutine-environment BABOL controller ("Coro" in Fig. 10).
pub fn coro_controller(layout: AddrLayout, cfg: RuntimeConfig) -> SoftController {
    SoftController::new("BABOL-Coro", cfg, move |req| {
        let t = Target {
            chip: req.lun,
            layout,
        };
        let ctx = OpCtx::new(req.lun, 0);
        ctx.set_poll_backoff(cfg.poll_backoff);
        ctx.set_op_id(req.id);
        let req = *req;
        let body_ctx = ctx.clone();
        let future: std::pin::Pin<Box<dyn std::future::Future<Output = ()>>> = match req.kind {
            IoKind::Read => Box::pin(async move {
                let r =
                    ops::read_page(&body_ctx, &t, row_of(&req), req.col, req.len, req.dram_addr)
                        .await;
                if r.is_ok() {
                    body_ctx.set_outcome(Ok(()));
                }
            }),
            IoKind::Program => Box::pin(async move {
                let r =
                    ops::program_page(&body_ctx, &t, row_of(&req), req.dram_addr, req.len).await;
                if r.is_ok() {
                    body_ctx.set_outcome(Ok(()));
                }
            }),
            IoKind::Erase => Box::pin(async move {
                let r = ops::erase_block(&body_ctx, &t, row_of(&req)).await;
                if r.is_ok() {
                    body_ctx.set_outcome(Ok(()));
                }
            }),
        };
        Box::new(CoroTask::new(&ctx, future)) as Box<dyn SoftTask>
    })
}

/// Builds the RTOS-environment BABOL controller ("RTOS" in Fig. 10).
pub fn rtos_controller(layout: AddrLayout, cfg: RuntimeConfig) -> SoftController {
    SoftController::new("BABOL-RTOS", cfg, move |req| {
        let t = Target {
            chip: req.lun,
            layout,
        };
        match req.kind {
            IoKind::Read => Box::new(
                RtosTask::new(
                    req.lun,
                    0,
                    ReadOp::new(t, row_of(req), req.col, req.len, req.dram_addr, false),
                )
                .with_poll_backoff(cfg.poll_backoff)
                .with_op_id(req.id),
            ) as Box<dyn SoftTask>,
            IoKind::Program => Box::new(
                RtosTask::new(
                    req.lun,
                    0,
                    ProgramOp::new(t, row_of(req), req.dram_addr, req.len, false),
                )
                .with_poll_backoff(cfg.poll_backoff)
                .with_op_id(req.id),
            ),
            IoKind::Erase => Box::new(
                RtosTask::new(req.lun, 0, EraseOp::new(t, row_of(req)))
                    .with_poll_backoff(cfg.poll_backoff)
                    .with_op_id(req.id),
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Controller;

    #[test]
    fn factories_name_their_controllers() {
        let layout = AddrLayout::new(512, 8, 8, 4);
        assert_eq!(
            coro_controller(layout, RuntimeConfig::coroutine()).name(),
            "BABOL-Coro"
        );
        assert_eq!(
            rtos_controller(layout, RuntimeConfig::rtos()).name(),
            "BABOL-RTOS"
        );
    }
}

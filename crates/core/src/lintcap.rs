//! Lint-capture harness: records the transaction stream of each shipped
//! coroutine operation.
//!
//! The static verifier (`babol-verify`) lints *programs*, but the operation
//! library in [`crate::ops`] is made of `async fn`s — their μFSM programs
//! only exist once the coroutine runs against real hardware state (status
//! polling, retry loops). This module runs one operation at a time against
//! a fresh simulated channel, plays every transaction it emits through the
//! real execution engine (so polls terminate and data flows), and returns
//! the emitted transactions in order. `examples/ufsm_lint.rs` and the
//! mutation/differential tests feed these captures to the verifier.

use babol_channel::Channel;
use babol_flash::array::ContentMode;
use babol_flash::lun::LunConfig;
use babol_flash::{Lun, PackageProfile};
use babol_onfi::addr::RowAddr;
use babol_sim::{Dram, SimDuration, SimTime};
use babol_ufsm::{execute, EmitConfig, Transaction};

use crate::ops::{self, Target};
use crate::runtime::coro::{CoroTask, OpCtx};
use crate::runtime::{SoftTask, TaskStatus, TxnResult};

/// One operation of the shipped coroutine library, as a capturable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`ops::read_status`]
    ReadStatus,
    /// [`ops::wait_ready`] (a poll loop over READ STATUS)
    WaitReady,
    /// [`ops::read_page`]
    ReadPage,
    /// [`ops::read_page_pslc`]
    ReadPagePslc,
    /// [`ops::program_page`]
    ProgramPage,
    /// [`ops::program_page_pslc`]
    ProgramPagePslc,
    /// [`ops::erase_block`]
    EraseBlock,
    /// [`ops::set_features`]
    SetFeatures,
    /// [`ops::get_features`]
    GetFeatures,
    /// [`ops::read_id`]
    ReadId,
    /// [`ops::reset`]
    Reset,
    /// [`ops::read_param_page`]
    ReadParamPage,
    /// [`ops::read_with_retry`]
    ReadWithRetry,
    /// [`ops::gang_read`]
    GangRead,
    /// [`ops::cache_read_seq`]
    CacheReadSeq,
    /// [`ops::multi_plane_read`]
    MultiPlaneRead,
    /// [`ops::erase_with_suspended_read`]
    EraseWithSuspendedRead,
}

impl OpKind {
    /// Every operation the library ships, in source order.
    pub const ALL: &'static [OpKind] = &[
        OpKind::ReadStatus,
        OpKind::WaitReady,
        OpKind::ReadPage,
        OpKind::ReadPagePslc,
        OpKind::ProgramPage,
        OpKind::ProgramPagePslc,
        OpKind::EraseBlock,
        OpKind::SetFeatures,
        OpKind::GetFeatures,
        OpKind::ReadId,
        OpKind::Reset,
        OpKind::ReadParamPage,
        OpKind::ReadWithRetry,
        OpKind::GangRead,
        OpKind::CacheReadSeq,
        OpKind::MultiPlaneRead,
        OpKind::EraseWithSuspendedRead,
    ];

    /// The operation's name as it appears in `ops.rs`.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::ReadStatus => "read_status",
            OpKind::WaitReady => "wait_ready",
            OpKind::ReadPage => "read_page",
            OpKind::ReadPagePslc => "read_page_pslc",
            OpKind::ProgramPage => "program_page",
            OpKind::ProgramPagePslc => "program_page_pslc",
            OpKind::EraseBlock => "erase_block",
            OpKind::SetFeatures => "set_features",
            OpKind::GetFeatures => "get_features",
            OpKind::ReadId => "read_id",
            OpKind::Reset => "reset",
            OpKind::ReadParamPage => "read_param_page",
            OpKind::ReadWithRetry => "read_with_retry",
            OpKind::GangRead => "gang_read",
            OpKind::CacheReadSeq => "cache_read_seq",
            OpKind::MultiPlaneRead => "multi_plane_read",
            OpKind::EraseWithSuspendedRead => "erase_with_suspended_read",
        }
    }
}

/// DRAM addresses the captured operations use; far apart so streams never
/// overlap.
const DEST: u64 = 0x2_0000;
const SRC: u64 = 0x8_0000;
const SCRATCH: u64 = 0xF_0000;

/// Runs `kind` against a pristine channel wired per `profile` and returns
/// every transaction the operation emitted, in emission order.
///
/// The harness is a miniature, deterministic stand-in for the full
/// [`crate::system::Engine`]: it advances the coroutine, forwards staged
/// DRAM writes, executes each transaction with the real μFSM engine at the
/// earliest legal bus time, honours sleeps by jumping simulated time, and
/// delivers results until the operation finishes.
///
/// # Panics
///
/// Panics if the operation livelocks (no transaction, sleep, or completion
/// for many consecutive advances) or a transaction fails to execute — both
/// indicate a bug worth failing a lint run over.
pub fn capture(profile: &PackageProfile, kind: OpKind) -> Vec<Transaction> {
    let lun_count = profile.luns_per_channel.max(2);
    let luns: Vec<Lun> = (0..lun_count)
        .map(|i| {
            Lun::new(LunConfig {
                profile: profile.clone(),
                content: ContentMode::Pristine,
                seed: i as u64 + 1,
                inject_errors: false,
                require_init: false,
            })
        })
        .collect();
    let mut channel = Channel::new(luns);
    let mut dram = Dram::new();
    let emit = EmitConfig::nv_ddr2(profile.max_mts.min(200));

    let layout = profile.layout();
    let t = Target { chip: 0, layout };
    let len = profile.geometry.page_size.min(2048);
    let row = |block: u32, page: u32| RowAddr {
        lun: 0,
        block,
        page,
    };
    // Source data for program-flavoured captures, and pre-programmed pages
    // for the read-flavoured ones (reading a never-programmed page reports
    // FAIL, which would derail the capture into the error path).
    dram.write(SRC, &vec![0xA5u8; len]);
    let seed_page = vec![0x5Au8; len];
    for lun in 0..lun_count {
        let array = channel.lun_mut(lun).array_mut();
        for page in 0..4 {
            array
                .program_page(
                    RowAddr {
                        lun,
                        block: 0,
                        page,
                    },
                    &seed_page,
                    false,
                )
                .expect("seed program");
        }
        array
            .program_page(
                RowAddr {
                    lun,
                    block: 1,
                    page: 0,
                },
                &seed_page,
                false,
            )
            .expect("seed program");
    }

    let ctx = OpCtx::new(0, 0);
    // A realistic pacing quantum, so poll loops sleep instead of hammering
    // the bus (and the capture loop can make time progress).
    ctx.set_poll_backoff(SimDuration::from_micros(2));

    let mut task: CoroTask = {
        let c = ctx.clone();
        match kind {
            OpKind::ReadStatus => CoroTask::new(&ctx, async move {
                ops::read_status(&c, &t).await;
            }),
            OpKind::WaitReady => CoroTask::new(&ctx, async move {
                ops::wait_ready(&c, &t).await;
            }),
            OpKind::ReadPage => CoroTask::new(&ctx, async move {
                ops::read_page(&c, &t, row(0, 0), 0, len, DEST)
                    .await
                    .unwrap();
            }),
            OpKind::ReadPagePslc => CoroTask::new(&ctx, async move {
                ops::read_page_pslc(&c, &t, row(0, 0), 0, len, DEST)
                    .await
                    .unwrap();
            }),
            OpKind::ProgramPage => CoroTask::new(&ctx, async move {
                ops::program_page(&c, &t, row(4, 0), SRC, len)
                    .await
                    .unwrap();
            }),
            OpKind::ProgramPagePslc => CoroTask::new(&ctx, async move {
                ops::program_page_pslc(&c, &t, row(4, 0), SRC, len)
                    .await
                    .unwrap();
            }),
            OpKind::EraseBlock => CoroTask::new(&ctx, async move {
                ops::erase_block(&c, &t, row(2, 0)).await.unwrap();
            }),
            OpKind::SetFeatures => CoroTask::new(&ctx, async move {
                ops::set_features(&c, &t, 0x01, [0x05, 0, 0, 0], SCRATCH)
                    .await
                    .unwrap();
            }),
            OpKind::GetFeatures => CoroTask::new(&ctx, async move {
                ops::get_features(&c, &t, 0x01).await;
            }),
            OpKind::ReadId => CoroTask::new(&ctx, async move {
                ops::read_id(&c, &t, 8).await;
            }),
            OpKind::Reset => CoroTask::new(&ctx, async move {
                ops::reset(&c, &t).await.unwrap();
            }),
            OpKind::ReadParamPage => CoroTask::new(&ctx, async move {
                ops::read_param_page(&c, &t, 3).await;
            }),
            OpKind::ReadWithRetry => CoroTask::new(&ctx, async move {
                // Reject level 0 once so the retry path (SET FEATURES +
                // re-read) is part of the capture.
                ops::read_with_retry(&c, &t, row(0, 1), len, DEST, SCRATCH, 3, |level| level >= 1)
                    .await
                    .unwrap();
            }),
            OpKind::GangRead => CoroTask::new(&ctx, async move {
                let targets = [Target { chip: 0, layout }, Target { chip: 1, layout }];
                ops::gang_read(&c, &targets, row(0, 2), len, DEST)
                    .await
                    .unwrap();
            }),
            OpKind::CacheReadSeq => CoroTask::new(&ctx, async move {
                ops::cache_read_seq(&c, &t, row(0, 0), 3, len, DEST)
                    .await
                    .unwrap();
            }),
            OpKind::MultiPlaneRead => CoroTask::new(&ctx, async move {
                // Blocks 0 and 1 interleave onto planes 0 and 1.
                ops::multi_plane_read(&c, &t, [row(0, 0), row(1, 0)], len, [DEST, DEST + 0x4000])
                    .await
                    .unwrap();
            }),
            OpKind::EraseWithSuspendedRead => CoroTask::new(&ctx, async move {
                ops::erase_with_suspended_read(&c, &t, row(3, 0), row(0, 3), len, DEST)
                    .await
                    .unwrap();
            }),
        }
    };

    let mut captured = Vec::new();
    let mut now = SimTime::ZERO;
    let mut idle_advances = 0u32;
    loop {
        let status = task.advance(now);
        let mut staged = Vec::new();
        task.drain_staged(&mut staged);
        for (addr, bytes) in staged {
            dram.write(addr, &bytes);
        }
        let outbox = task.drain_outbox();
        if outbox.is_empty() {
            if status == TaskStatus::Finished {
                break;
            }
            if let Some(d) = task.take_sleep() {
                now += d;
                idle_advances = 0;
                continue;
            }
            idle_advances += 1;
            assert!(
                idle_advances < 10_000,
                "operation {} livelocked: blocked with nothing submitted",
                kind.name()
            );
            continue;
        }
        idle_advances = 0;
        for (ticket, txn) in outbox {
            let start = now.max(channel.busy_until());
            let out = execute(&mut channel, &mut dram, &emit, start, &txn)
                .unwrap_or_else(|e| panic!("operation {}: execute failed: {e:?}", kind.name()));
            now = out.end;
            captured.push(txn);
            task.deliver(
                ticket,
                TxnResult {
                    inline: out.inline,
                    end: out.end,
                },
            );
        }
    }
    assert!(
        !captured.is_empty(),
        "operation {} emitted no transactions",
        kind.name()
    );
    captured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_captures_a_nonempty_clean_stream() {
        let profile = PackageProfile::test_tiny();
        for &kind in OpKind::ALL {
            let txns = capture(&profile, kind);
            assert!(!txns.is_empty(), "{} captured nothing", kind.name());
            let model = babol_verify::TargetModel::from_profile(&profile);
            let report = babol_verify::verify_stream(&model, &txns);
            assert!(
                report.is_clean(),
                "{} is not lint-clean:\n{report}",
                kind.name()
            );
        }
    }

    #[test]
    fn capture_is_deterministic() {
        let profile = PackageProfile::test_tiny();
        let a = capture(&profile, OpKind::ReadPage);
        let b = capture(&profile, OpKind::ReadPage);
        assert_eq!(a, b);
    }
}

//! The simulated system: channel + DRAM + CPU + event loop.
//!
//! Everything a storage controller touches lives in [`System`]; the
//! [`Engine`] drives a [`Controller`] implementation with a request stream
//! and collects a [`RunReport`]. Controllers schedule their own wake-ups as
//! [`Event`]s; the engine only moves time forward deterministically.

use std::collections::VecDeque;
use std::fmt;

use babol_channel::Channel;
use babol_sim::{BufPool, Cpu, Dram, EventQueue, SimDuration, SimTime};
use babol_trace::{Component, Counter, TraceSink, Tracer};
use babol_ufsm::EmitConfig;

/// What an FTL-level request asks of the storage controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Read `len` bytes from (row, col) into DRAM at `dram_addr`.
    Read,
    /// Program `len` bytes from DRAM at `dram_addr` into (row, col).
    Program,
    /// Erase the block addressed by `row`.
    Erase,
}

/// One request injected "as if coming from the FTL" (paper §VI, Workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Monotonic request id.
    pub id: u64,
    /// Operation kind.
    pub kind: IoKind,
    /// Target LUN on the channel.
    pub lun: u32,
    /// Target block within the LUN.
    pub block: u32,
    /// Target page within the block.
    pub page: u32,
    /// Starting column (byte offset in the page).
    pub col: u32,
    /// Bytes to move.
    pub len: usize,
    /// DRAM buffer address.
    pub dram_addr: u64,
}

/// Events a controller can schedule for itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A transaction previously issued on the channel finished.
    TxnDone {
        /// The ticket the controller attached to the transaction.
        ticket: u64,
    },
    /// A LUN's R/B# line rose (hardware controllers watch the pin).
    RbEdge {
        /// Which LUN.
        lun: u32,
    },
    /// The CPU reached a completion point (software effects now visible).
    CpuDone,
    /// Re-evaluate hardware issue (channel may be free / queue refilled).
    IssueCheck,
    /// Generic timer wake-up with a controller-defined tag.
    Timer {
        /// Controller-defined tag.
        tag: u64,
    },
}

/// The hardware a controller drives, plus the simulated clock and the event
/// queue it schedules itself on.
pub struct System {
    /// Current simulated time.
    pub now: SimTime,
    /// The flash channel with its LUNs.
    pub channel: Channel,
    /// The SSD DRAM staging buffer.
    pub dram: Dram,
    /// μFSM emission configuration (interface speed, timing, packetizer).
    pub emit: EmitConfig,
    /// The processor running controller software (hardware baselines carry
    /// a zero-cost model).
    pub cpu: Cpu,
    /// Observability sink shared by every layer. Disabled by default: a
    /// non-traced run pays one branch per record site and nothing else.
    pub trace: Tracer,
    events: EventQueue<Event>,
    /// Page-buffer pool shared by the whole data path (DRAM, channel, LUNs,
    /// runtime mailboxes). One pool per system keeps recycling global.
    pool: BufPool,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl System {
    /// Assembles a system. Every data-path layer shares one page-buffer
    /// pool, so buffers released by one layer are reused by the next.
    pub fn new(mut channel: Channel, emit: EmitConfig, cpu: Cpu) -> Self {
        // Debug builds gate every transaction behind the static verifier
        // (release builds compile both the hook and this call out).
        babol_verify::install_debug_hook();
        let pool = BufPool::default();
        let mut dram = Dram::new();
        dram.set_pool(&pool);
        channel.set_pool(&pool);
        System {
            now: SimTime::ZERO,
            channel,
            dram,
            emit,
            cpu,
            trace: Tracer::disabled(),
            events: EventQueue::new(),
            pool,
        }
    }

    /// The system-wide page-buffer pool.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Copies the pool's allocation counters into the tracer's counter set,
    /// making zero-alloc claims observable in exported trace reports.
    pub fn export_pool_stats(&mut self) {
        let s = self.pool.stats();
        self.trace
            .set_counter(Component::Sim, Counter::PoolAcquires, s.acquires);
        self.trace
            .set_counter(Component::Sim, Counter::PoolHeapAllocs, s.heap_allocs());
        self.trace
            .set_counter(Component::Sim, Counter::PoolHighWater, s.high_water);
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.trace
            .count(Component::Sim, Counter::EventsScheduled, 1);
        self.events.push(at, event);
    }

    /// Schedules `event` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: Event) {
        self.trace
            .count(Component::Sim, Counter::EventsScheduled, 1);
        self.events.push(self.now + delay, event);
    }

    /// Number of events pending in the queue — used by stall diagnostics
    /// to distinguish a live-lock (events flowing) from a drained queue.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Time of the earliest pending event without removing it. Drivers that
    /// advance a shard only up to a barrier horizon (the parallel DES
    /// coordinator) peek before popping.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Removes the earliest pending event. Intended for drivers that own
    /// the event loop (the engine, the SSD host driver).
    pub fn pop_event(&mut self) -> Option<(SimTime, Event)> {
        let popped = self.events.pop();
        if popped.is_some() {
            self.trace.count(Component::Sim, Counter::EventsPopped, 1);
        }
        popped
    }
}

/// A storage controller: accepts FTL requests, drives the channel, reports
/// completions through [`Controller::take_completions`].
pub trait Controller {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Offers a request. Returns `false` if the controller's admission
    /// queue is full (the engine will retry after the next event).
    fn submit(&mut self, sys: &mut System, req: IoRequest) -> bool;

    /// Handles one event previously scheduled on the system.
    fn on_event(&mut self, sys: &mut System, ev: Event);

    /// Drains requests that completed since the last call, with their
    /// completion times.
    fn take_completions(&mut self, out: &mut Vec<(IoRequest, SimTime)>);

    /// Requests admitted but not yet completed.
    fn in_flight(&self) -> usize;
}

/// Completion record with latency, produced by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request.
    pub req: IoRequest,
    /// When it was submitted to the controller.
    pub submitted: SimTime,
    /// When the controller reported it done.
    pub completed: SimTime,
}

/// Outcome of an engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Completions in completion order.
    pub completions: Vec<Completion>,
    /// Total simulated time from first submission to last completion.
    pub elapsed: SimDuration,
    /// Data bytes moved by completed requests.
    pub bytes: u64,
    /// CPU busy cycles charged during the run.
    pub cpu_cycles: u64,
    /// Channel bus busy time.
    pub bus_busy: SimDuration,
}

impl RunReport {
    /// Mean throughput in MB/s (10^6 bytes per second).
    pub fn throughput_mbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Mean request latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.completions.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self
            .completions
            .iter()
            .map(|c| c.completed - c.submitted)
            .sum();
        total / self.completions.len() as u64
    }

    /// Latency at percentile `p` (0.0..=1.0).
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.completions.is_empty() {
            return SimDuration::ZERO;
        }
        let mut lats: Vec<SimDuration> = self
            .completions
            .iter()
            .map(|c| c.completed - c.submitted)
            .collect();
        lats.sort();
        let idx = ((lats.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        lats[idx]
    }
}

/// Drives a controller with a request stream at a fixed per-LUN queue depth
/// until `total` requests complete.
pub struct Engine {
    queue_depth_per_lun: usize,
    watchdog_budget: WatchdogBudget,
}

/// How a run's stall budget is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WatchdogBudget {
    /// Derive from the static envelope of the target package at run start
    /// (the default): [`Engine::envelope_watchdog_budget`].
    FromEnvelope,
    /// Caller-pinned budget.
    Fixed(SimDuration),
    /// Watchdog off.
    Disarmed,
}

impl Engine {
    /// Headroom multiplier on the worst single-operation envelope. A
    /// microbenchmark engine keeps at most one queue's worth of requests
    /// per LUN in flight, so even with every LUN serialized behind one
    /// channel, 64 worst-case operations of silence means live-lock, not a
    /// slow run.
    pub const WATCHDOG_HEADROOM_OPS: u64 = 64;

    /// The stall budget derived from the static timing envelope (rule
    /// V074): the envelope maximum of the worst well-formed single
    /// operation on `profile` — full raw-page program + read-back at SDR
    /// boot speed plus the worst-case array window — times
    /// [`WATCHDOG_HEADROOM_OPS`](Self::WATCHDOG_HEADROOM_OPS).
    pub fn envelope_watchdog_budget(profile: &babol_flash::PackageProfile) -> SimDuration {
        babol_verify::envelope::worst_op_envelope(profile) * Self::WATCHDOG_HEADROOM_OPS
    }

    /// An engine keeping up to `queue_depth_per_lun` requests outstanding on
    /// each LUN (the paper's microbenchmarks submit "a sequence of read
    /// operations through each channel controller": depth 1 per LUN keeps
    /// every LUN loaded without unbounded queueing).
    pub fn new(queue_depth_per_lun: usize) -> Self {
        assert!(queue_depth_per_lun >= 1);
        Engine {
            queue_depth_per_lun,
            watchdog_budget: WatchdogBudget::FromEnvelope,
        }
    }

    /// Overrides the envelope-derived stall watchdog budget; `None`
    /// disarms it.
    pub fn watchdog_budget(mut self, budget: Option<SimDuration>) -> Self {
        self.watchdog_budget = match budget {
            Some(b) => WatchdogBudget::Fixed(b),
            None => WatchdogBudget::Disarmed,
        };
        self
    }

    /// Renders the stall diagnostic the watchdog panics with: progress so
    /// far, the oldest in-flight request, queue/activity snapshots.
    fn stall_report(
        sys: &System,
        controller: &dyn Controller,
        done: usize,
        total: usize,
        submit_times: &std::collections::BTreeMap<u64, SimTime>,
        stalled_for: SimDuration,
    ) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "stall watchdog (V074 EnvelopeExceeded): no host completion for {stalled_for:?} \
             ({done} of {total} requests complete, controller {})\n",
            controller.name()
        );
        if let Some((id, at)) = submit_times.iter().min_by_key(|(_, &at)| at) {
            let _ = writeln!(
                s,
                "  oldest pending op: id {id}, submitted at {at:?} \
                 ({:?} ago)",
                sys.now.saturating_since(*at)
            );
        }
        let _ = writeln!(
            s,
            "  controller in-flight: {}, pending events: {}",
            controller.in_flight(),
            sys.pending_events()
        );
        let _ = writeln!(
            s,
            "  cpu busy until {:?}, channel busy until {:?}",
            sys.cpu.busy_until(),
            sys.channel.busy_until()
        );
        for c in Component::ALL {
            if let Some(t) = sys.trace.last_activity(c) {
                let _ = writeln!(s, "  last {} event at {t:?}", c.name());
            }
        }
        s
    }

    /// Runs `requests` to completion against `controller` on `sys`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (no events pending while requests
    /// remain) — that is a controller bug, not a workload condition.
    pub fn run(
        &self,
        sys: &mut System,
        controller: &mut dyn Controller,
        requests: Vec<IoRequest>,
    ) -> RunReport {
        let start = sys.now;
        let mut per_lun_inflight: Vec<usize> = vec![0; sys.channel.lun_count() as usize];
        let mut pending: Vec<VecDeque<IoRequest>> =
            vec![VecDeque::new(); sys.channel.lun_count() as usize];
        let mut submit_times: std::collections::BTreeMap<u64, SimTime> =
            std::collections::BTreeMap::new();
        let total = requests.len();
        for r in requests {
            pending[r.lun as usize].push_back(r);
        }
        let mut completions = Vec::with_capacity(total);
        let mut scratch = Vec::new();
        let mut bytes = 0u64;
        let mut watchdog = match self.watchdog_budget {
            WatchdogBudget::FromEnvelope => {
                let profile = sys.channel.lun(0).profile();
                let worst = babol_verify::envelope::worst_op_envelope(profile);
                let budget = worst * Self::WATCHDOG_HEADROOM_OPS;
                sys.trace
                    .set_counter(Component::Sim, Counter::EnvelopeWorstOpPs, worst.as_picos());
                sys.trace
                    .set_counter(Component::Sim, Counter::WatchdogBudgetPs, budget.as_picos());
                babol_sim::Watchdog::new(budget)
            }
            WatchdogBudget::Fixed(budget) => babol_sim::Watchdog::new(budget),
            WatchdogBudget::Disarmed => babol_sim::Watchdog::disarmed(),
        };
        watchdog.arm_at(start);

        loop {
            // Collect completions first so freed slots can be refilled in
            // the same iteration.
            controller.take_completions(&mut scratch);
            for (req, at) in scratch.drain(..) {
                per_lun_inflight[req.lun as usize] -= 1;
                bytes += req.len as u64;
                watchdog.note_progress(at);
                completions.push(Completion {
                    req,
                    submitted: submit_times.remove(&req.id).unwrap_or(start),
                    completed: at,
                });
            }
            // Keep every LUN loaded up to the queue depth.
            for lun in 0..pending.len() {
                while per_lun_inflight[lun] < self.queue_depth_per_lun {
                    let Some(&req) = pending[lun].front() else {
                        break;
                    };
                    if !controller.submit(sys, req) {
                        break;
                    }
                    pending[lun].pop_front();
                    per_lun_inflight[lun] += 1;
                    submit_times.insert(req.id, sys.now);
                }
            }
            if completions.len() == total {
                break;
            }
            // Advance time.
            let Some((at, ev)) = sys.pop_event() else {
                panic!(
                    "simulation deadlock: {} of {total} requests complete, no events pending ({})",
                    completions.len(),
                    controller.name()
                );
            };
            debug_assert!(at >= sys.now);
            sys.now = at;
            if watchdog.is_stalled(sys.now) {
                panic!(
                    "{}",
                    Self::stall_report(
                        sys,
                        controller,
                        completions.len(),
                        total,
                        &submit_times,
                        watchdog.stalled_for(sys.now),
                    )
                );
            }
            controller.on_event(sys, ev);
        }
        RunReport {
            elapsed: sys.now - start,
            bytes,
            cpu_cycles: sys.cpu.busy_cycles(),
            bus_busy: sys.channel.stats().busy,
            completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use babol_flash::lun::LunConfig;
    use babol_flash::Lun;
    use babol_sim::{CostModel, Freq};

    fn tiny_system(n_luns: usize) -> System {
        let luns = (0..n_luns)
            .map(|i| {
                let mut cfg = LunConfig::test_default();
                cfg.seed = i as u64 + 1;
                Lun::new(cfg)
            })
            .collect();
        System::new(
            Channel::new(luns),
            EmitConfig::nv_ddr2(200),
            Cpu::new(Freq::from_ghz(1), CostModel::free()),
        )
    }

    /// A trivial controller that "completes" a request one microsecond after
    /// submission, via a Timer event.
    struct NullController {
        inflight: Vec<(IoRequest, SimTime)>,
        done: Vec<(IoRequest, SimTime)>,
    }

    impl Controller for NullController {
        fn name(&self) -> &'static str {
            "null"
        }
        fn submit(&mut self, sys: &mut System, req: IoRequest) -> bool {
            if self.inflight.len() >= 4 {
                return false;
            }
            let at = sys.now + SimDuration::from_micros(1);
            sys.schedule(at, Event::Timer { tag: req.id });
            self.inflight.push((req, at));
            true
        }
        fn on_event(&mut self, _sys: &mut System, ev: Event) {
            if let Event::Timer { tag } = ev {
                if let Some(pos) = self.inflight.iter().position(|(r, _)| r.id == tag) {
                    let (req, at) = self.inflight.remove(pos);
                    self.done.push((req, at));
                }
            }
        }
        fn take_completions(&mut self, out: &mut Vec<(IoRequest, SimTime)>) {
            out.append(&mut self.done);
        }
        fn in_flight(&self) -> usize {
            self.inflight.len()
        }
    }

    fn reqs(n: u64, lun: u32) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest {
                id: i,
                kind: IoKind::Read,
                lun,
                block: 0,
                page: i as u32,
                col: 0,
                len: 512,
                dram_addr: i * 512,
            })
            .collect()
    }

    #[test]
    fn engine_runs_to_completion() {
        let mut sys = tiny_system(1);
        let mut ctrl = NullController {
            inflight: Vec::new(),
            done: Vec::new(),
        };
        let report = Engine::new(1).run(&mut sys, &mut ctrl, reqs(8, 0));
        assert_eq!(report.completions.len(), 8);
        assert_eq!(report.bytes, 8 * 512);
        // Depth 1: requests serialize, 1 us each.
        assert_eq!(report.elapsed, SimDuration::from_micros(8));
        assert_eq!(report.mean_latency(), SimDuration::from_micros(1));
    }

    #[test]
    fn queue_depth_overlaps_requests() {
        let mut sys = tiny_system(1);
        let mut ctrl = NullController {
            inflight: Vec::new(),
            done: Vec::new(),
        };
        let report = Engine::new(4).run(&mut sys, &mut ctrl, reqs(8, 0));
        // Four at a time, 1 us per wave: 2 us total.
        assert_eq!(report.elapsed, SimDuration::from_micros(2));
    }

    #[test]
    fn report_percentiles_are_ordered() {
        let mut sys = tiny_system(1);
        let mut ctrl = NullController {
            inflight: Vec::new(),
            done: Vec::new(),
        };
        let report = Engine::new(2).run(&mut sys, &mut ctrl, reqs(16, 0));
        assert!(report.latency_percentile(0.5) <= report.latency_percentile(0.99));
        assert!(report.throughput_mbps() > 0.0);
    }

    /// Events flow forever (a timer endlessly rescheduling itself) but no
    /// request ever completes: the deadlock panic can't see it, the stall
    /// watchdog must.
    #[test]
    #[should_panic(expected = "stall watchdog")]
    fn live_lock_trips_the_watchdog() {
        struct Spinner;
        impl Controller for Spinner {
            fn name(&self) -> &'static str {
                "spinner"
            }
            fn submit(&mut self, sys: &mut System, _r: IoRequest) -> bool {
                sys.schedule_in(SimDuration::from_micros(10), Event::Timer { tag: 0 });
                true
            }
            fn on_event(&mut self, sys: &mut System, _e: Event) {
                sys.schedule_in(SimDuration::from_micros(10), Event::Timer { tag: 0 });
            }
            fn take_completions(&mut self, _o: &mut Vec<(IoRequest, SimTime)>) {}
            fn in_flight(&self) -> usize {
                1
            }
        }
        let mut sys = tiny_system(1);
        Engine::new(1)
            .watchdog_budget(Some(SimDuration::from_millis(1)))
            .run(&mut sys, &mut Spinner, reqs(1, 0));
    }

    /// Same live-lock, but with the *default* (envelope-derived) budget:
    /// an execution that exceeds the static envelope by the headroom
    /// factor trips the watchdog, and the panic names the rule.
    #[test]
    #[should_panic(expected = "V074")]
    fn envelope_budget_trips_and_names_v074() {
        struct Spinner;
        impl Controller for Spinner {
            fn name(&self) -> &'static str {
                "spinner"
            }
            fn submit(&mut self, sys: &mut System, _r: IoRequest) -> bool {
                sys.schedule_in(SimDuration::from_micros(10), Event::Timer { tag: 0 });
                true
            }
            fn on_event(&mut self, sys: &mut System, _e: Event) {
                sys.schedule_in(SimDuration::from_micros(10), Event::Timer { tag: 0 });
            }
            fn take_completions(&mut self, _o: &mut Vec<(IoRequest, SimTime)>) {}
            fn in_flight(&self) -> usize {
                1
            }
        }
        let mut sys = tiny_system(1);
        // The derived budget is finite and far below a second on the tiny
        // profile — the spinner crosses it in bounded simulated time.
        let budget = Engine::envelope_watchdog_budget(&babol_flash::PackageProfile::test_tiny());
        assert!(budget < SimDuration::from_secs(1));
        Engine::new(1).run(&mut sys, &mut Spinner, reqs(1, 0));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_loud() {
        struct Sink;
        impl Controller for Sink {
            fn name(&self) -> &'static str {
                "sink"
            }
            fn submit(&mut self, _s: &mut System, _r: IoRequest) -> bool {
                true // swallow without ever completing
            }
            fn on_event(&mut self, _s: &mut System, _e: Event) {}
            fn take_completions(&mut self, _o: &mut Vec<(IoRequest, SimTime)>) {}
            fn in_flight(&self) -> usize {
                1
            }
        }
        let mut sys = tiny_system(1);
        Engine::new(1).run(&mut sys, &mut Sink, reqs(1, 0));
    }
}

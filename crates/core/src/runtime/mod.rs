//! The software environments: shared runtime machinery.
//!
//! The paper ships two software environments — C++20 coroutines and
//! FreeRTOS — that differ in programming model and context-switch cost but
//! share the same structure: operations build transactions, a task scheduler
//! decides which operation runs, a transaction scheduler feeds the hardware
//! instruction queue, and completions wake the blocked operation (§V).
//!
//! This module implements that shared structure once, as [`SoftRuntime`].
//! The two flavours plug in as [`SoftTask`] implementations:
//!
//! * [`coro`] — operations are `async fn`s polled by a tiny deterministic
//!   executor (the C++20-coroutines analogue);
//! * [`rtos`] — operations are explicit state machines (the FreeRTOS
//!   analogue: more expertise demanded, lighter runtime).
//!
//! Every software action charges the CPU model, so the same controller
//! logic slows down on a 150 MHz soft-core exactly the way Figure 10 shows.

// Determinism allowlist: the scheduler's tables are keyed lookups on the
// simulator's hot path and are never iterated — scheduling order is decided
// by the ready queue, not map order (`scripts/lint.sh` documents the gate).
#![allow(clippy::disallowed_types)]

pub mod coro;
pub mod rtos;

use std::collections::{HashMap, VecDeque};
use std::fmt;

use babol_sim::{BufPool, PageBuf, SimDuration, SimTime};
use babol_trace::{Component, Counter, Metric, TraceKind, TraceSink};
use babol_ufsm::{execute_traced, Transaction};

use crate::sched::{TaskMeta, TaskPolicy, TxnMeta, TxnPolicy};
use crate::system::{Controller, Event, IoRequest, System};

/// Task identifier inside a runtime.
pub type TaskId = usize;

/// A finished task: id, completion time, and outcome (`None` when the task
/// ended without reporting one).
pub type FinishedTask = (TaskId, SimTime, Option<Result<(), OpError>>);

/// Builds the software task serving one I/O request.
pub type TaskFactory = Box<dyn FnMut(&IoRequest) -> Box<dyn SoftTask>>;

/// Result of one completed transaction, delivered to the owning task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnResult {
    /// Bytes returned inline (status bytes, feature values, IDs).
    pub inline: Vec<u8>,
    /// When the transaction finished on the bus.
    pub end: SimTime,
}

/// Why an operation finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The LUN reported FAIL status.
    Failed {
        /// The raw status byte.
        status: u8,
    },
    /// Data failed ECC even after retries.
    Uncorrectable,
    /// The operation gave up waiting.
    Timeout,
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Failed { status } => write!(f, "operation failed, status {status:#04x}"),
            OpError::Uncorrectable => write!(f, "uncorrectable data"),
            OpError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for OpError {}

/// Per-task communication area between the runtime and the operation body.
#[derive(Debug, Default)]
pub struct Mailbox {
    /// Simulated time at the start of the current advance.
    pub now: SimTime,
    next_local: u64,
    /// Transactions built during the current advance (local ticket, txn).
    pub outbox: Vec<(u64, Transaction)>,
    /// Results delivered by the runtime, keyed by local ticket.
    pub results: HashMap<u64, TxnResult>,
    /// Sleep request set during the current advance.
    pub sleep: Option<SimDuration>,
    /// DRAM staging writes requested during the current advance (the CPU
    /// preparing buffers the Packetizer will read). Payloads come from the
    /// system's buffer pool; see [`Mailbox::stage`].
    pub staged: Vec<(u64, PageBuf)>,
    /// Page-buffer pool shared with the rest of the system, attached by the
    /// runtime at spawn time.
    pub pool: BufPool,
    /// Straight-line work steps performed during the current advance.
    pub steps: u32,
    /// Final outcome, set by the operation before finishing.
    pub outcome: Option<Result<(), OpError>>,
    /// Poll-pacing interval inherited from the runtime configuration.
    pub poll_backoff: SimDuration,
    /// The LUN the operation targets (scheduling metadata).
    pub lun: u32,
    /// Task priority (scheduling metadata).
    pub priority: u8,
    /// Host request id the operation serves (trace attribution; 0 for
    /// anonymous tasks).
    pub op_id: u64,
}

impl Mailbox {
    /// Allocates a local ticket and queues `txn` for submission.
    pub fn submit(&mut self, txn: Transaction) -> u64 {
        let t = self.next_local;
        self.next_local += 1;
        self.outbox.push((t, txn));
        t
    }

    /// Takes the result for `ticket` if it has been delivered.
    pub fn take_result(&mut self, ticket: u64) -> Option<TxnResult> {
        self.results.remove(&ticket)
    }

    /// Queues a DRAM staging write of `bytes` at `addr`, copying once into
    /// a pooled buffer.
    pub fn stage(&mut self, addr: u64, bytes: &[u8]) {
        let mut buf = self.pool.acquire();
        buf.extend_from_slice(bytes);
        self.staged.push((addr, buf.freeze()));
    }
}

/// Progress of a task after one advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Blocked on a transaction result or a timer.
    Blocked,
    /// Ran to completion.
    Finished,
}

/// A schedulable operation. Implemented by coroutine tasks ([`coro`]) and
/// RTOS state-machine tasks ([`rtos`]).
pub trait SoftTask {
    /// Runs the task until it blocks or finishes. `now` is the simulated
    /// time of this scheduling slot.
    fn advance(&mut self, now: SimTime) -> TaskStatus;
    /// Drains transactions built during the last advance.
    fn drain_outbox(&mut self) -> Vec<(u64, Transaction)>;
    /// Delivers a transaction result.
    fn deliver(&mut self, local_ticket: u64, result: TxnResult);
    /// Takes a pending sleep request.
    fn take_sleep(&mut self) -> Option<SimDuration>;
    /// Drains DRAM staging writes requested during the last advance into
    /// `out` (an out-parameter so the runtime reuses one scratch vector).
    fn drain_staged(&mut self, out: &mut Vec<(u64, PageBuf)>);
    /// Connects the task's mailbox to the system's buffer pool. Called by
    /// the runtime at spawn time; tasks without staging may ignore it.
    fn attach_pool(&mut self, _pool: &BufPool) {}
    /// Takes the count of body steps executed during the last advance.
    fn take_steps(&mut self) -> u32;
    /// Takes the final outcome (valid once finished).
    fn take_outcome(&mut self) -> Option<Result<(), OpError>>;
    /// Scheduling metadata.
    fn meta(&self) -> TaskMeta;
    /// The host request id this task serves, for trace attribution
    /// (0 when the task is anonymous — boot, calibration, tests).
    fn op_id(&self) -> u64 {
        0
    }
}

/// Configuration of a software runtime instance.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Cycle costs of software actions (coroutine vs RTOS).
    pub cost: babol_sim::CostModel,
    /// Task scheduling policy.
    pub task_policy: TaskPolicy,
    /// Transaction scheduling policy.
    pub txn_policy: TxnPolicy,
    /// Hardware instruction queue depth (transaction look-ahead).
    pub lookahead: usize,
    /// Hardware issue latency between queued transactions.
    pub issue_gap: SimDuration,
    /// Maximum concurrently admitted operations.
    pub admission: usize,
    /// Pacing interval of status-poll loops: after a busy status, the
    /// operation is rescheduled after this long rather than hot-spinning.
    /// This quantum plus the per-action cycle costs produce the polling
    /// periods of the paper's Fig. 11 (~30 µs coroutine, ~2.5 µs RTOS at
    /// 1 GHz).
    pub poll_backoff: SimDuration,
}

impl RuntimeConfig {
    /// The coroutine software environment, as configured in the paper's
    /// experiments.
    pub fn coroutine() -> Self {
        RuntimeConfig {
            cost: babol_sim::CostModel::coroutine(),
            task_policy: TaskPolicy::RoundRobinLun,
            txn_policy: TxnPolicy::RoundRobinLun,
            lookahead: 4,
            issue_gap: SimDuration::from_nanos(150),
            admission: 64,
            poll_backoff: SimDuration::from_nanos(24_000),
        }
    }

    /// The RTOS software environment.
    pub fn rtos() -> Self {
        RuntimeConfig {
            cost: babol_sim::CostModel::rtos(),
            task_policy: TaskPolicy::RoundRobinLun,
            txn_policy: TxnPolicy::RoundRobinLun,
            lookahead: 4,
            issue_gap: SimDuration::from_nanos(150),
            admission: 64,
            poll_backoff: SimDuration::from_nanos(1_400),
        }
    }
}

#[derive(Debug)]
struct ReadyTxn {
    ticket: u64,
    txn: Transaction,
    meta: TxnMeta,
    avail: SimTime,
}

#[derive(Debug)]
struct HwEntry {
    ticket: u64,
    txn: Transaction,
    avail: SimTime,
}

/// The shared software runtime: task scheduling, transaction scheduling,
/// hardware instruction queue, completion routing.
pub struct SoftRuntime {
    cfg: RuntimeConfig,
    tasks: Vec<Option<Box<dyn SoftTask>>>,
    free_ids: Vec<TaskId>,
    active: usize,
    runnable: VecDeque<TaskId>,
    waiting: HashMap<u64, (TaskId, u64)>,
    sleeping: HashMap<u64, TaskId>,
    ready: Vec<ReadyTxn>,
    hw_queue: VecDeque<HwEntry>,
    in_flight: Option<u64>,
    outcomes: HashMap<u64, (SimTime, Vec<u8>)>,
    next_ticket: u64,
    next_timer: u64,
    last_task_lun: u32,
    last_txn_lun: u32,
    /// LUNs with an operation currently admitted (the task scheduler admits
    /// "an operation when a given package is available", paper §V).
    lun_active: HashMap<u32, TaskId>,
    /// Tasks parked until their LUN frees up.
    lun_parked: HashMap<u32, VecDeque<TaskId>>,
    finished: Vec<FinishedTask>,
    /// Cumulative count of issued transactions (stats).
    pub txns_issued: u64,
    /// When each runnable task entered the runnable queue (traced runs
    /// only; feeds the scheduler pick-wait histogram).
    runnable_since: HashMap<TaskId, SimTime>,
    /// Per-ticket (enqueue time, lun, op id) for transaction latency and
    /// event attribution (traced runs only).
    txn_info: HashMap<u64, (SimTime, u32, u64)>,
    /// Reused receptacle for staged DRAM writes drained each pump pass.
    staged_scratch: Vec<(u64, PageBuf)>,
}

impl fmt::Debug for SoftRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftRuntime")
            .field("active", &self.active)
            .field("runnable", &self.runnable.len())
            .field("hw_queue", &self.hw_queue.len())
            .finish()
    }
}

impl SoftRuntime {
    /// Creates an empty runtime.
    pub fn new(cfg: RuntimeConfig) -> Self {
        SoftRuntime {
            cfg,
            tasks: Vec::new(),
            free_ids: Vec::new(),
            active: 0,
            runnable: VecDeque::new(),
            waiting: HashMap::new(),
            sleeping: HashMap::new(),
            ready: Vec::new(),
            hw_queue: VecDeque::new(),
            in_flight: None,
            outcomes: HashMap::new(),
            next_ticket: 0,
            next_timer: 0,
            last_task_lun: 0,
            last_txn_lun: 0,
            lun_active: HashMap::new(),
            lun_parked: HashMap::new(),
            finished: Vec::new(),
            txns_issued: 0,
            runnable_since: HashMap::new(),
            txn_info: HashMap::new(),
            staged_scratch: Vec::new(),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Number of admitted, unfinished tasks.
    pub fn active_tasks(&self) -> usize {
        self.active
    }

    /// Admits a task; returns its id. The caller should schedule a
    /// zero-delay [`Event::CpuDone`] so the pump runs.
    pub fn spawn(&mut self, sys: &mut System, mut task: Box<dyn SoftTask>) -> TaskId {
        task.attach_pool(sys.pool());
        let lun = task.meta().lun;
        let op_id = task.op_id();
        let tid = if let Some(tid) = self.free_ids.pop() {
            self.tasks[tid] = Some(task);
            tid
        } else {
            self.tasks.push(Some(task));
            self.tasks.len() - 1
        };
        self.active += 1;
        sys.trace.count(Component::Sched, Counter::TasksSpawned, 1);
        sys.trace
            .event(sys.now, Component::Sched, TraceKind::TaskSpawn, lun, op_id);
        // One operation per LUN at a time: a LUN has one page register, so
        // overlapping operations would corrupt each other. Later arrivals
        // park until the LUN frees up.
        let admitted = match self.lun_active.entry(lun) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.lun_parked.entry(lun).or_default().push_back(tid);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(tid);
                true
            }
        };
        if admitted {
            self.mark_runnable(sys, tid);
        }
        tid
    }

    /// Pushes a task onto the runnable queue. Traced runs also stamp when
    /// the wait began (for the scheduler-latency metric) and emit a
    /// `TaskReady` event — the anchor phase attribution pairs with the
    /// matching `SchedPick` to measure scheduler wait.
    fn mark_runnable(&mut self, sys: &mut System, tid: TaskId) {
        self.runnable.push_back(tid);
        if sys.trace.is_enabled() {
            self.runnable_since.insert(tid, sys.now);
            if let Some(task) = self.tasks[tid].as_ref() {
                sys.trace.event(
                    sys.now,
                    Component::Sched,
                    TraceKind::TaskReady,
                    task.meta().lun,
                    task.op_id(),
                );
            }
        }
    }

    /// Drains tasks that finished since the last call.
    pub fn drain_finished(&mut self, out: &mut Vec<FinishedTask>) {
        out.append(&mut self.finished);
    }

    /// Routes one system event into the runtime.
    pub fn on_event(&mut self, sys: &mut System, ev: Event) {
        match ev {
            Event::TxnDone { ticket } => self.on_txn_done(sys, ticket),
            Event::CpuDone => self.pump(sys),
            Event::IssueCheck => {
                self.try_issue(sys);
            }
            Event::Timer { tag } => self.on_timer(sys, tag),
            Event::RbEdge { .. } => {
                // Software environments poll via READ STATUS; R/B# edges are
                // for the hardware baselines.
            }
        }
    }

    fn on_timer(&mut self, sys: &mut System, tag: u64) {
        if let Some(tid) = self.sleeping.remove(&tag) {
            self.mark_runnable(sys, tid);
            self.pump(sys);
        }
    }

    fn on_txn_done(&mut self, sys: &mut System, ticket: u64) {
        debug_assert_eq!(self.in_flight, Some(ticket));
        self.in_flight = None;
        let (end, data) = self
            .outcomes
            .remove(&ticket)
            .expect("completion for unknown transaction");
        sys.cpu.charge(sys.now, self.cfg.cost.completion_irq);
        sys.trace.count(Component::Sched, Counter::TxnsCompleted, 1);
        if sys.trace.is_enabled() {
            if let Some((enq, lun, op_id)) = self.txn_info.remove(&ticket) {
                sys.trace.event(
                    sys.now,
                    Component::Sched,
                    TraceKind::TxnComplete,
                    lun,
                    op_id,
                );
                sys.trace
                    .observe(Metric::TxnLatency, sys.now.saturating_since(enq));
            }
        }
        if let Some((tid, local)) = self.waiting.remove(&ticket) {
            if self.tasks[tid].is_some() {
                let task = self.tasks[tid].as_mut().expect("checked above");
                task.deliver(local, TxnResult { inline: data, end });
                self.mark_runnable(sys, tid);
            }
        }
        // The hardware proceeds to the next queued transaction regardless of
        // what the software does with the completion.
        self.try_issue(sys);
        self.pump(sys);
    }

    /// Runs every runnable task, moving built transactions toward the
    /// hardware queue, charging the CPU for each step.
    fn pump(&mut self, sys: &mut System) {
        let cost = self.cfg.cost;
        if sys.trace.is_enabled() {
            // Queue-depth-over-time sample: one event per pump entry, all
            // four depths packed into the op_id word (layout unchanged).
            let depths = babol_trace::QueueDepths::from_lens(
                self.runnable.len(),
                self.ready.len(),
                self.hw_queue.len(),
                usize::from(self.in_flight.is_some()),
            );
            sys.trace.event(
                sys.now,
                Component::Sched,
                TraceKind::QueueDepth,
                0,
                depths.pack(),
            );
        }
        while let Some(tid) = self.pick_runnable(sys) {
            sys.cpu.charge(sys.now, cost.resume);
            let task = self.tasks[tid].as_mut().expect("runnable task exists");
            let status = task.advance(sys.now);
            let steps = task.take_steps();
            if steps > 0 {
                sys.cpu.charge(sys.now, steps as u64 * cost.op_body_step);
            }
            task.drain_staged(&mut self.staged_scratch);
            for (addr, bytes) in self.staged_scratch.drain(..) {
                sys.cpu.charge(sys.now, cost.op_body_step);
                sys.dram.write(addr, &bytes);
            }
            for (local, txn) in task.drain_outbox() {
                sys.cpu.charge(sys.now, cost.enqueue_txn);
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                self.waiting.insert(ticket, (tid, local));
                let meta = TxnMeta {
                    lun: task.meta().lun,
                    data_bytes: txn.data_bytes(),
                    priority: task.meta().priority,
                };
                sys.trace.count(Component::Sched, Counter::TxnsEnqueued, 1);
                if sys.trace.is_enabled() {
                    let op_id = task.op_id();
                    sys.trace.event(
                        sys.now,
                        Component::Sched,
                        TraceKind::TxnEnqueue,
                        meta.lun,
                        op_id,
                    );
                    self.txn_info.insert(ticket, (sys.now, meta.lun, op_id));
                }
                self.ready.push(ReadyTxn {
                    ticket,
                    txn,
                    meta,
                    avail: sys.cpu.busy_until(),
                });
            }
            if let Some(dur) = task.take_sleep() {
                let tag = self.next_timer;
                self.next_timer += 1;
                self.sleeping.insert(tag, tid);
                sys.schedule(sys.cpu.busy_until() + dur, Event::Timer { tag });
            }
            sys.cpu.charge(sys.now, cost.suspend);
            if status == TaskStatus::Finished {
                let outcome = task.take_outcome();
                let lun = task.meta().lun;
                let op_id = task.op_id();
                sys.trace.count(Component::Sched, Counter::TasksFinished, 1);
                sys.trace.event(
                    sys.cpu.busy_until(),
                    Component::Sched,
                    TraceKind::TaskFinish,
                    lun,
                    op_id,
                );
                self.finished.push((tid, sys.cpu.busy_until(), outcome));
                self.tasks[tid] = None;
                self.free_ids.push(tid);
                self.active -= 1;
                // Release the LUN and admit the next parked operation —
                // highest priority first, FIFO among equals (the task
                // scheduler's admission decision, paper §V).
                self.lun_active.remove(&lun);
                let by_priority = self.cfg.task_policy == TaskPolicy::Priority;
                let next = self.lun_parked.get_mut(&lun).and_then(|q| {
                    if by_priority {
                        let best = q
                            .iter()
                            .enumerate()
                            .max_by_key(|(i, &tid)| {
                                let prio = self.tasks[tid]
                                    .as_ref()
                                    .map(|t| t.meta().priority)
                                    .unwrap_or(0);
                                (prio, usize::MAX - i) // FIFO tie-break
                            })
                            .map(|(i, _)| i);
                        best.and_then(|i| q.remove(i))
                    } else {
                        q.pop_front()
                    }
                });
                if let Some(next) = next {
                    self.lun_active.insert(lun, next);
                    self.mark_runnable(sys, next);
                }
            }
        }
        // Transaction scheduler: refill the hardware instruction queue.
        let mut pushed = false;
        while self.hw_queue.len() < self.cfg.lookahead && !self.ready.is_empty() {
            sys.cpu.charge(sys.now, cost.txn_sched_pass);
            let metas: Vec<TxnMeta> = self.ready.iter().map(|r| r.meta).collect();
            let Some(idx) = self.cfg.txn_policy.pick(&metas, self.last_txn_lun) else {
                break;
            };
            let r = self.ready.remove(idx);
            self.last_txn_lun = r.meta.lun;
            self.hw_queue.push_back(HwEntry {
                ticket: r.ticket,
                txn: r.txn,
                avail: r.avail.max(sys.cpu.busy_until()),
            });
            pushed = true;
        }
        if pushed && self.in_flight.is_none() {
            sys.schedule(sys.cpu.busy_until().max(sys.now), Event::IssueCheck);
        }
    }

    fn pick_runnable(&mut self, sys: &mut System) -> Option<TaskId> {
        let metas: Vec<TaskMeta> = self
            .runnable
            .iter()
            .map(|&tid| self.tasks[tid].as_ref().expect("runnable").meta())
            .collect();
        let idx = self.cfg.task_policy.pick(&metas, self.last_task_lun)?;
        self.last_task_lun = metas[idx].lun;
        let tid = self.runnable.remove(idx);
        sys.trace.count(Component::Sched, Counter::SchedPicks, 1);
        if sys.trace.is_enabled() {
            if let Some(&tid) = tid.as_ref() {
                let since = self.runnable_since.remove(&tid).unwrap_or(sys.now);
                sys.trace
                    .observe(Metric::SchedWait, sys.now.saturating_since(since));
                let op_id = self.tasks[tid].as_ref().map(|t| t.op_id()).unwrap_or(0);
                sys.trace.event(
                    sys.now,
                    Component::Sched,
                    TraceKind::SchedPick,
                    metas[idx].lun,
                    op_id,
                );
            }
        }
        tid
    }

    /// Hardware side: starts the next queued transaction if the bus is free.
    /// Costs no CPU.
    fn try_issue(&mut self, sys: &mut System) {
        if self.in_flight.is_some() {
            return;
        }
        let Some(front) = self.hw_queue.front() else {
            return;
        };
        if front.avail > sys.now {
            let at = front.avail;
            sys.schedule(at, Event::IssueCheck);
            return;
        }
        let entry = self.hw_queue.pop_front().expect("front exists");
        let start = sys.now.max(sys.channel.busy_until()) + self.cfg.issue_gap;
        let op_id = self
            .txn_info
            .get(&entry.ticket)
            .map(|&(_, _, op_id)| op_id)
            .unwrap_or(0);
        sys.trace.count(Component::Sched, Counter::TxnsIssued, 1);
        if sys.trace.is_enabled() {
            let lun = self
                .txn_info
                .get(&entry.ticket)
                .map(|&(_, lun, _)| lun)
                .unwrap_or(0);
            sys.trace
                .event(start, Component::Sched, TraceKind::TxnIssue, lun, op_id);
        }
        let outcome = execute_traced(
            &mut sys.channel,
            &mut sys.dram,
            &sys.emit,
            start,
            &entry.txn,
            op_id,
            &mut sys.trace,
        )
        .unwrap_or_else(|e| panic!("operation logic drove an illegal waveform: {e}"));
        self.txns_issued += 1;
        self.outcomes
            .insert(entry.ticket, (outcome.end, outcome.inline));
        self.in_flight = Some(entry.ticket);
        sys.schedule(
            outcome.end,
            Event::TxnDone {
                ticket: entry.ticket,
            },
        );
    }
}

/// A [`Controller`] wrapping a [`SoftRuntime`] plus a task factory: this is
/// a complete BABOL software-defined controller.
pub struct SoftController {
    name: &'static str,
    rt: SoftRuntime,
    factory: TaskFactory,
    req_of: HashMap<TaskId, IoRequest>,
    done: Vec<(IoRequest, SimTime)>,
    scratch: Vec<FinishedTask>,
    /// Submission time per in-flight task, for op-latency observations
    /// (traced runs only).
    submitted_at: HashMap<TaskId, SimTime>,
    /// Operations that finished with an error (visible to experiments).
    pub errors: Vec<(IoRequest, OpError)>,
}

impl SoftController {
    /// Builds a controller: `factory` turns each admitted request into a
    /// task for the runtime.
    pub fn new(
        name: &'static str,
        cfg: RuntimeConfig,
        factory: impl FnMut(&IoRequest) -> Box<dyn SoftTask> + 'static,
    ) -> Self {
        SoftController {
            name,
            rt: SoftRuntime::new(cfg),
            factory: Box::new(factory),
            req_of: HashMap::new(),
            done: Vec::new(),
            scratch: Vec::new(),
            submitted_at: HashMap::new(),
            errors: Vec::new(),
        }
    }

    /// The wrapped runtime (stats, configuration).
    pub fn runtime(&self) -> &SoftRuntime {
        &self.rt
    }

    fn harvest(&mut self, sys: &mut System) {
        let mut fin = std::mem::take(&mut self.scratch);
        self.rt.drain_finished(&mut fin);
        for (tid, at, outcome) in fin.drain(..) {
            let t0 = self.submitted_at.remove(&tid);
            if let Some(req) = self.req_of.remove(&tid) {
                if let Some(Err(e)) = outcome {
                    self.errors.push((req, e));
                }
                sys.trace.count(Component::Ctrl, Counter::OpsCompleted, 1);
                if sys.trace.is_enabled() {
                    sys.trace
                        .event(at, Component::Ctrl, TraceKind::OpComplete, req.lun, req.id);
                    sys.trace
                        .observe(Metric::OpLatency, at.saturating_since(t0.unwrap_or(at)));
                }
                self.done.push((req, at));
            }
        }
        self.scratch = fin;
    }
}

impl Controller for SoftController {
    fn name(&self) -> &'static str {
        self.name
    }

    fn submit(&mut self, sys: &mut System, req: IoRequest) -> bool {
        if self.rt.active_tasks() >= self.rt.config().admission {
            return false;
        }
        let task = (self.factory)(&req);
        let tid = self.rt.spawn(sys, task);
        self.req_of.insert(tid, req);
        sys.trace.count(Component::Ctrl, Counter::OpsSubmitted, 1);
        if sys.trace.is_enabled() {
            sys.trace.event(
                sys.now,
                Component::Ctrl,
                TraceKind::OpIssue,
                req.lun,
                req.id,
            );
            self.submitted_at.insert(tid, sys.now);
        }
        sys.schedule(sys.now, Event::CpuDone);
        true
    }

    fn on_event(&mut self, sys: &mut System, ev: Event) {
        self.rt.on_event(sys, ev);
        self.harvest(sys);
    }

    fn take_completions(&mut self, out: &mut Vec<(IoRequest, SimTime)>) {
        out.append(&mut self.done);
    }

    fn in_flight(&self) -> usize {
        self.req_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Target;
    use crate::runtime::coro::{CoroTask, OpCtx};
    use babol_channel::Channel;
    use babol_flash::lun::LunConfig;
    use babol_flash::{Lun, PackageProfile};
    use babol_onfi::bus::ChipMask;
    use babol_onfi::opcode::op;
    use babol_sim::{Cpu, Freq};
    use babol_ufsm::{DmaDest, EmitConfig, Latch, PostWait};

    fn sys(luns: u32) -> System {
        let l = (0..luns)
            .map(|i| {
                let mut cfg = LunConfig::test_default();
                cfg.seed = i as u64 + 1;
                Lun::new(cfg)
            })
            .collect();
        System::new(
            Channel::new(l),
            EmitConfig::nv_ddr2(200),
            Cpu::new(Freq::from_ghz(1), babol_sim::CostModel::rtos()),
        )
    }

    fn status_task(lun: u32) -> Box<dyn SoftTask> {
        let ctx = OpCtx::new(lun, 0);
        let c = ctx.clone();
        let t = Target {
            chip: lun,
            layout: PackageProfile::test_tiny().layout(),
        };
        let fut = async move {
            let st = crate::ops::read_status(&c, &t).await;
            c.set_outcome(if st & 0x40 != 0 {
                Ok(())
            } else {
                Err(OpError::Timeout)
            });
        };
        Box::new(CoroTask::new(&ctx, fut))
    }

    /// Drains the event queue, routing everything into the runtime.
    fn drain(rt: &mut SoftRuntime, sys: &mut System) {
        while let Some((at, ev)) = sys.pop_event() {
            sys.now = at;
            rt.on_event(sys, ev);
        }
    }

    #[test]
    fn spawn_run_finish_cycle() {
        let mut s = sys(1);
        let mut rt = SoftRuntime::new(RuntimeConfig::rtos());
        rt.spawn(&mut s, status_task(0));
        assert_eq!(rt.active_tasks(), 1);
        s.schedule(s.now, Event::CpuDone);
        drain(&mut rt, &mut s);
        let mut fin = Vec::new();
        rt.drain_finished(&mut fin);
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].2, Some(Ok(())));
        assert_eq!(rt.active_tasks(), 0);
        assert_eq!(rt.txns_issued, 1);
    }

    #[test]
    fn same_lun_tasks_serialize_different_luns_overlap() {
        let mut s = sys(2);
        let mut rt = SoftRuntime::new(RuntimeConfig::rtos());
        // Two tasks on LUN 0 (must serialize) and one on LUN 1.
        rt.spawn(&mut s, status_task(0));
        rt.spawn(&mut s, status_task(0));
        rt.spawn(&mut s, status_task(1));
        assert_eq!(rt.active_tasks(), 3);
        s.schedule(s.now, Event::CpuDone);
        drain(&mut rt, &mut s);
        let mut fin = Vec::new();
        rt.drain_finished(&mut fin);
        assert_eq!(fin.len(), 3);
        assert!(fin.iter().all(|(_, _, o)| *o == Some(Ok(()))));
    }

    #[test]
    fn lookahead_queue_respects_configured_depth() {
        let mut cfg = RuntimeConfig::rtos();
        cfg.lookahead = 1;
        let mut s = sys(4);
        let mut rt = SoftRuntime::new(cfg);
        for lun in 0..4 {
            rt.spawn(&mut s, status_task(lun));
        }
        // Run one pump only: all four tasks submit, but the hardware queue
        // holds at most one transaction; the rest wait in `ready`.
        rt.pump(&mut s);
        assert!(rt.hw_queue.len() <= 1);
        assert_eq!(rt.hw_queue.len() + rt.ready.len(), 4);
        drain(&mut rt, &mut s);
        let mut fin = Vec::new();
        rt.drain_finished(&mut fin);
        assert_eq!(fin.len(), 4);
    }

    #[test]
    fn cpu_is_charged_for_software_actions() {
        let mut s = sys(1);
        let mut rt = SoftRuntime::new(RuntimeConfig::rtos());
        rt.spawn(&mut s, status_task(0));
        s.schedule(s.now, Event::CpuDone);
        drain(&mut rt, &mut s);
        // At minimum: task sched + resume + enqueue + suspend + txn sched +
        // completion + final resume/suspend.
        assert!(s.cpu.busy_cycles() > 1_000, "{}", s.cpu.busy_cycles());
    }

    #[test]
    fn runtime_level_transaction_roundtrip() {
        // A raw task that submits a hand-built transaction and checks the
        // inline result, exercising deliver() plumbing end to end.
        let ctx = OpCtx::new(0, 0);
        let c = ctx.clone();
        let fut = async move {
            let txn = babol_ufsm::Transaction::new(ChipMask::single(0))
                .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
                .read(1, DmaDest::Inline);
            let r = c.submit(txn).await;
            c.set_outcome(if r.inline == vec![0xE0] {
                Ok(())
            } else {
                Err(OpError::Timeout)
            });
        };
        let mut s = sys(1);
        let mut rt = SoftRuntime::new(RuntimeConfig::rtos());
        rt.spawn(&mut s, Box::new(CoroTask::new(&ctx, fut)));
        s.schedule(s.now, Event::CpuDone);
        drain(&mut rt, &mut s);
        let mut fin = Vec::new();
        rt.drain_finished(&mut fin);
        assert_eq!(fin[0].2, Some(Ok(())));
    }
}

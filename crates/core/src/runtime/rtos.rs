//! The RTOS software environment.
//!
//! The paper's second software environment runs on FreeRTOS: context
//! switches are an order of magnitude cheaper than the C++ coroutine
//! runtime's, but "it demands more expertise from the programmer" (§V,
//! Discussion). The reproduction makes that trade-off tangible: where the
//! coroutine library writes `await`, the RTOS library threads every
//! operation through an explicit state machine — compare [`ReadOp`] here
//! with [`crate::ops::read_page`].
//!
//! Both environments share the [`SoftRuntime`](crate::runtime::SoftRuntime);
//! only the task representation and the [`CostModel`](babol_sim::CostModel)
//! differ, mirroring the paper's claim that the abstractions are
//! runtime-agnostic.

use babol_onfi::addr::{ColumnAddr, RowAddr};
use babol_onfi::opcode::op;
use babol_onfi::status::Status;
use babol_sim::{BufPool, PageBuf, SimDuration, SimTime};
use babol_ufsm::{DmaDest, Latch, PostWait, Transaction};

use crate::ops::Target;
use crate::runtime::{Mailbox, OpError, SoftTask, TaskStatus, TxnResult};
use crate::sched::TaskMeta;

/// Progress of one machine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStatus {
    /// The machine can take another step immediately.
    Continue,
    /// Blocked on the outstanding transaction (or sleep).
    Blocked,
    /// The operation is complete.
    Finished,
}

/// An RTOS-style operation: an explicit state machine stepped by the task
/// wrapper. The machine reads results from, and submits transactions to,
/// the shared [`Mailbox`].
pub trait RtosMachine {
    /// Executes one state transition.
    fn step(&mut self, mb: &mut Mailbox) -> MachineStatus;
}

/// Task wrapper adapting an [`RtosMachine`] to the runtime's
/// [`SoftTask`] interface.
pub struct RtosTask<M: RtosMachine> {
    mb: Mailbox,
    machine: M,
    finished: bool,
}

impl<M: RtosMachine> RtosTask<M> {
    /// Wraps `machine` as a task targeting `lun` at `priority`.
    pub fn new(lun: u32, priority: u8, machine: M) -> Self {
        RtosTask {
            mb: Mailbox {
                lun,
                priority,
                ..Mailbox::default()
            },
            machine,
            finished: false,
        }
    }

    /// Sets the poll-pacing interval (from the runtime configuration).
    pub fn with_poll_backoff(mut self, d: SimDuration) -> Self {
        self.mb.poll_backoff = d;
        self
    }

    /// Tags the task with the host request id it serves, so trace events
    /// across every layer attribute to the same operation.
    pub fn with_op_id(mut self, id: u64) -> Self {
        self.mb.op_id = id;
        self
    }
}

impl<M: RtosMachine> SoftTask for RtosTask<M> {
    fn advance(&mut self, now: SimTime) -> TaskStatus {
        if self.finished {
            return TaskStatus::Finished;
        }
        self.mb.now = now;
        loop {
            match self.machine.step(&mut self.mb) {
                MachineStatus::Continue => continue,
                MachineStatus::Blocked => return TaskStatus::Blocked,
                MachineStatus::Finished => {
                    self.finished = true;
                    return TaskStatus::Finished;
                }
            }
        }
    }

    fn drain_outbox(&mut self) -> Vec<(u64, Transaction)> {
        std::mem::take(&mut self.mb.outbox)
    }

    fn deliver(&mut self, local_ticket: u64, result: TxnResult) {
        self.mb.results.insert(local_ticket, result);
    }

    fn take_sleep(&mut self) -> Option<SimDuration> {
        self.mb.sleep.take()
    }

    fn drain_staged(&mut self, out: &mut Vec<(u64, PageBuf)>) {
        out.append(&mut self.mb.staged);
    }

    fn attach_pool(&mut self, pool: &BufPool) {
        self.mb.pool = pool.clone();
    }

    fn take_steps(&mut self) -> u32 {
        std::mem::take(&mut self.mb.steps)
    }

    fn take_outcome(&mut self) -> Option<Result<(), OpError>> {
        self.mb.outcome.take()
    }

    fn meta(&self) -> TaskMeta {
        TaskMeta {
            lun: self.mb.lun,
            priority: self.mb.priority,
        }
    }

    fn op_id(&self) -> u64 {
        self.mb.op_id
    }
}

// --------------------------------------------------------------- operations

/// READ with Column Address Change, RTOS flavour: the same waveform logic
/// as [`crate::ops::read_page`], hand-threaded through a state machine.
pub struct ReadOp {
    t: Target,
    row: RowAddr,
    col: u32,
    len: usize,
    dest: u64,
    pslc: bool,
    state: ReadState,
    pending: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadState {
    IssueLatch,
    AwaitLatch,
    IssuePoll,
    AwaitPoll,
    IssueFetch,
    AwaitFetch,
}

impl ReadOp {
    /// Builds a page read (set `pslc` for the Algorithm-3 variant).
    pub fn new(t: Target, row: RowAddr, col: u32, len: usize, dest: u64, pslc: bool) -> Self {
        ReadOp {
            t,
            row,
            col,
            len,
            dest,
            pslc,
            state: ReadState::IssueLatch,
            pending: None,
        }
    }

    fn submit(&mut self, mb: &mut Mailbox, txn: Transaction) {
        self.pending = Some(mb.submit(txn));
    }

    fn result(&mut self, mb: &mut Mailbox) -> Option<TxnResult> {
        let t = self.pending.take().expect("await without submit");
        match mb.take_result(t) {
            Some(r) => Some(r),
            None => {
                self.pending = Some(t);
                None
            }
        }
    }
}

impl RtosMachine for ReadOp {
    fn step(&mut self, mb: &mut Mailbox) -> MachineStatus {
        match self.state {
            ReadState::IssueLatch => {
                let addr = self.t.layout.pack_full(ColumnAddr(0), self.row);
                let mut latches = Vec::with_capacity(4);
                if self.pslc {
                    latches.push(Latch::Cmd(op::PSLC_PREFIX));
                }
                latches.push(Latch::Cmd(op::READ_1));
                latches.push(Latch::Addr(addr));
                latches.push(Latch::Cmd(op::READ_2));
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(latches, PostWait::Wb);
                self.submit(mb, txn);
                self.state = ReadState::AwaitLatch;
                MachineStatus::Blocked
            }
            ReadState::AwaitLatch => {
                if self.result(mb).is_none() {
                    return MachineStatus::Blocked;
                }
                self.state = ReadState::IssuePoll;
                MachineStatus::Continue
            }
            ReadState::IssuePoll => {
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
                    .read(1, DmaDest::Inline);
                self.submit(mb, txn);
                self.state = ReadState::AwaitPoll;
                MachineStatus::Blocked
            }
            ReadState::AwaitPoll => {
                let Some(r) = self.result(mb) else {
                    return MachineStatus::Blocked;
                };
                mb.steps += 1;
                let status = r.inline[0];
                if status & Status::RDY == 0 {
                    self.state = ReadState::IssuePoll;
                    if mb.poll_backoff.as_picos() > 0 {
                        mb.sleep = Some(mb.poll_backoff);
                        return MachineStatus::Blocked;
                    }
                    return MachineStatus::Continue;
                }
                if status & Status::FAIL != 0 {
                    mb.outcome = Some(Err(OpError::Failed { status }));
                    return MachineStatus::Finished;
                }
                self.state = ReadState::IssueFetch;
                MachineStatus::Continue
            }
            ReadState::IssueFetch => {
                let col_addr = self.t.layout.pack_col(ColumnAddr(self.col));
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(
                        vec![
                            Latch::Cmd(op::CHANGE_READ_COL_1),
                            Latch::Addr(col_addr),
                            Latch::Cmd(op::CHANGE_READ_COL_2),
                        ],
                        PostWait::Ccs,
                    )
                    .read(self.len, DmaDest::Dram(self.dest));
                self.submit(mb, txn);
                self.state = ReadState::AwaitFetch;
                MachineStatus::Blocked
            }
            ReadState::AwaitFetch => {
                if self.result(mb).is_none() {
                    return MachineStatus::Blocked;
                }
                mb.steps += 1;
                mb.outcome = Some(Ok(()));
                MachineStatus::Finished
            }
        }
    }
}

/// PAGE PROGRAM, RTOS flavour.
pub struct ProgramOp {
    t: Target,
    row: RowAddr,
    src: u64,
    len: usize,
    pslc: bool,
    state: ProgState,
    pending: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgState {
    IssueWrite,
    AwaitWrite,
    IssuePoll,
    AwaitPoll,
}

impl ProgramOp {
    /// Builds a page program (set `pslc` for the pSLC variant).
    pub fn new(t: Target, row: RowAddr, src: u64, len: usize, pslc: bool) -> Self {
        ProgramOp {
            t,
            row,
            src,
            len,
            pslc,
            state: ProgState::IssueWrite,
            pending: None,
        }
    }
}

impl RtosMachine for ProgramOp {
    fn step(&mut self, mb: &mut Mailbox) -> MachineStatus {
        match self.state {
            ProgState::IssueWrite => {
                let addr = self.t.layout.pack_full(ColumnAddr(0), self.row);
                let mut latches = Vec::with_capacity(3);
                if self.pslc {
                    latches.push(Latch::Cmd(op::PSLC_PREFIX));
                }
                latches.push(Latch::Cmd(op::PROGRAM_1));
                latches.push(Latch::Addr(addr));
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(latches, PostWait::Adl)
                    .write(self.len, self.src)
                    .ca(vec![Latch::Cmd(op::PROGRAM_2)], PostWait::Wb);
                self.pending = Some(mb.submit(txn));
                self.state = ProgState::AwaitWrite;
                MachineStatus::Blocked
            }
            ProgState::AwaitWrite => {
                let t = self.pending.take().expect("await without submit");
                if mb.take_result(t).is_none() {
                    self.pending = Some(t);
                    return MachineStatus::Blocked;
                }
                self.state = ProgState::IssuePoll;
                MachineStatus::Continue
            }
            ProgState::IssuePoll => {
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
                    .read(1, DmaDest::Inline);
                self.pending = Some(mb.submit(txn));
                self.state = ProgState::AwaitPoll;
                MachineStatus::Blocked
            }
            ProgState::AwaitPoll => {
                let t = self.pending.take().expect("await without submit");
                let Some(r) = mb.take_result(t) else {
                    self.pending = Some(t);
                    return MachineStatus::Blocked;
                };
                mb.steps += 1;
                let status = r.inline[0];
                if status & Status::RDY == 0 {
                    self.state = ProgState::IssuePoll;
                    if mb.poll_backoff.as_picos() > 0 {
                        mb.sleep = Some(mb.poll_backoff);
                        return MachineStatus::Blocked;
                    }
                    return MachineStatus::Continue;
                }
                mb.outcome = Some(if status & Status::FAIL != 0 {
                    Err(OpError::Failed { status })
                } else {
                    Ok(())
                });
                MachineStatus::Finished
            }
        }
    }
}

/// BLOCK ERASE, RTOS flavour.
pub struct EraseOp {
    t: Target,
    row: RowAddr,
    state: EraseState,
    pending: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EraseState {
    IssueErase,
    AwaitErase,
    IssuePoll,
    AwaitPoll,
}

impl EraseOp {
    /// Builds a block erase.
    pub fn new(t: Target, row: RowAddr) -> Self {
        EraseOp {
            t,
            row,
            state: EraseState::IssueErase,
            pending: None,
        }
    }
}

impl RtosMachine for EraseOp {
    fn step(&mut self, mb: &mut Mailbox) -> MachineStatus {
        match self.state {
            EraseState::IssueErase => {
                let addr = self.t.layout.pack_row(self.row);
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip)).ca(
                    vec![
                        Latch::Cmd(op::ERASE_1),
                        Latch::Addr(addr),
                        Latch::Cmd(op::ERASE_2),
                    ],
                    PostWait::Wb,
                );
                self.pending = Some(mb.submit(txn));
                self.state = EraseState::AwaitErase;
                MachineStatus::Blocked
            }
            EraseState::AwaitErase => {
                let t = self.pending.take().expect("await without submit");
                if mb.take_result(t).is_none() {
                    self.pending = Some(t);
                    return MachineStatus::Blocked;
                }
                self.state = EraseState::IssuePoll;
                MachineStatus::Continue
            }
            EraseState::IssuePoll => {
                let txn = Transaction::new(babol_onfi::bus::ChipMask::single(self.t.chip))
                    .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
                    .read(1, DmaDest::Inline);
                self.pending = Some(mb.submit(txn));
                self.state = EraseState::AwaitPoll;
                MachineStatus::Blocked
            }
            EraseState::AwaitPoll => {
                let t = self.pending.take().expect("await without submit");
                let Some(r) = mb.take_result(t) else {
                    self.pending = Some(t);
                    return MachineStatus::Blocked;
                };
                mb.steps += 1;
                let status = r.inline[0];
                if status & Status::RDY == 0 {
                    self.state = EraseState::IssuePoll;
                    if mb.poll_backoff.as_picos() > 0 {
                        mb.sleep = Some(mb.poll_backoff);
                        return MachineStatus::Blocked;
                    }
                    return MachineStatus::Continue;
                }
                mb.outcome = Some(if status & Status::FAIL != 0 {
                    Err(OpError::Failed { status })
                } else {
                    Ok(())
                });
                MachineStatus::Finished
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use babol_onfi::addr::AddrLayout;

    fn target() -> Target {
        Target {
            chip: 0,
            layout: AddrLayout::new(512, 8, 8, 4),
        }
    }

    fn row() -> RowAddr {
        RowAddr {
            lun: 0,
            block: 1,
            page: 0,
        }
    }

    #[test]
    fn read_op_walks_its_states() {
        let machine = ReadOp::new(target(), row(), 0, 64, 0x1000, false);
        let mut task = RtosTask::new(0, 0, machine);
        // Latch.
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        assert_eq!(out.len(), 1);
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![],
                end: SimTime::ZERO,
            },
        );
        // Poll: busy once, then ready.
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0x80],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0xE0],
                end: SimTime::ZERO,
            },
        );
        // Fetch.
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        assert_eq!(out[0].1.data_bytes(), 64);
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert_eq!(task.take_outcome(), Some(Ok(())));
    }

    #[test]
    fn read_op_reports_fail_status() {
        let machine = ReadOp::new(target(), row(), 0, 64, 0, false);
        let mut task = RtosTask::new(0, 0, machine);
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![],
                end: SimTime::ZERO,
            },
        );
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        // Ready with FAIL set.
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0xE1],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert!(matches!(
            task.take_outcome(),
            Some(Err(OpError::Failed { .. }))
        ));
    }

    #[test]
    fn pslc_read_adds_prefix_latch() {
        let machine = ReadOp::new(target(), row(), 0, 64, 0, true);
        let mut task = RtosTask::new(0, 0, machine);
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        let instrs = out[0].1.instrs();
        match &instrs[0] {
            babol_ufsm::Instr::CaWriter { latches, .. } => {
                assert_eq!(latches[0], Latch::Cmd(op::PSLC_PREFIX));
            }
            other => panic!("unexpected instr {other:?}"),
        }
    }

    #[test]
    fn program_then_poll_finishes() {
        let machine = ProgramOp::new(target(), row(), 0x2000, 64, false);
        let mut task = RtosTask::new(0, 0, machine);
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        assert_eq!(out[0].1.data_bytes(), 64);
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![],
                end: SimTime::ZERO,
            },
        );
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0xE0],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert_eq!(task.take_outcome(), Some(Ok(())));
    }

    #[test]
    fn erase_fail_propagates() {
        let machine = EraseOp::new(target(), row());
        let mut task = RtosTask::new(0, 0, machine);
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![],
                end: SimTime::ZERO,
            },
        );
        task.advance(SimTime::ZERO);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0xE1],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert!(matches!(
            task.take_outcome(),
            Some(Err(OpError::Failed { .. }))
        ));
    }
}

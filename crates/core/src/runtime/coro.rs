//! The coroutine software environment.
//!
//! The paper's first (and friendliest) environment writes operations in
//! C++20 coroutines: the operation body enqueues a transaction and
//! `co_await`s its completion (Fig. 8). Rust's `async fn` is the direct
//! analogue — the operation library in [`crate::ops`] reads almost line for
//! line like the paper's Algorithms 1–3.
//!
//! The executor here is deliberately tiny and deterministic: tasks are
//! polled only when the runtime knows they can progress (a result arrived
//! or a timer fired), wakers are no-ops, and all context-switch costs are
//! charged by the shared [`SoftRuntime`](crate::runtime::SoftRuntime)
//! through the coroutine [`CostModel`](babol_sim::CostModel).

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use babol_sim::{BufPool, PageBuf, SimDuration, SimTime};
use babol_ufsm::Transaction;

use crate::runtime::{Mailbox, OpError, SoftTask, TaskStatus, TxnResult};
use crate::sched::TaskMeta;

/// Handle the operation body uses to talk to its runtime: submit
/// transactions, await their completion, sleep, account body work.
///
/// Cloning is cheap; the handle is shared between the task wrapper and the
/// future.
#[derive(Clone)]
pub struct OpCtx {
    mb: Rc<RefCell<Mailbox>>,
}

impl OpCtx {
    /// Creates a context for a task targeting `lun` at `priority`.
    pub fn new(lun: u32, priority: u8) -> Self {
        let mb = Mailbox {
            lun,
            priority,
            ..Mailbox::default()
        };
        OpCtx {
            mb: Rc::new(RefCell::new(mb)),
        }
    }

    /// Enqueues `txn` for execution and returns a future resolving to its
    /// result — the paper's `co_await add_transaction(...)`.
    pub fn submit(&self, txn: Transaction) -> TxnWait {
        let ticket = self.mb.borrow_mut().submit(txn);
        TxnWait {
            mb: Rc::clone(&self.mb),
            ticket,
        }
    }

    /// Accounts one unit of straight-line operation-body work.
    pub fn step(&self) {
        self.mb.borrow_mut().steps += 1;
    }

    /// Stages bytes into DRAM (the CPU preparing a buffer the Packetizer
    /// will DMA from, e.g. SET FEATURES parameter bytes).
    pub fn stage_bytes(&self, addr: u64, bytes: &[u8]) {
        self.mb.borrow_mut().stage(addr, bytes);
    }

    /// Suspends the operation for at least `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> SleepWait {
        SleepWait {
            mb: Rc::clone(&self.mb),
            dur,
            armed: false,
        }
    }

    /// Simulated time of the current scheduling slot.
    pub fn now(&self) -> SimTime {
        self.mb.borrow().now
    }

    /// The runtime's poll-pacing interval (zero = hot polling).
    pub fn poll_backoff(&self) -> SimDuration {
        self.mb.borrow().poll_backoff
    }

    /// Sets the poll-pacing interval (done by the controller factory from
    /// the runtime configuration).
    pub fn set_poll_backoff(&self, d: SimDuration) {
        self.mb.borrow_mut().poll_backoff = d;
    }

    /// Tags the task with the host request id it serves, so trace events
    /// across every layer attribute to the same operation.
    pub fn set_op_id(&self, id: u64) {
        self.mb.borrow_mut().op_id = id;
    }

    /// Records the operation's final outcome (read by the controller).
    pub fn set_outcome(&self, outcome: Result<(), OpError>) {
        self.mb.borrow_mut().outcome = Some(outcome);
    }
}

/// Future resolving when a submitted transaction completes.
pub struct TxnWait {
    mb: Rc<RefCell<Mailbox>>,
    ticket: u64,
}

impl Future for TxnWait {
    type Output = TxnResult;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<TxnResult> {
        match self.mb.borrow_mut().take_result(self.ticket) {
            Some(r) => Poll::Ready(r),
            None => Poll::Pending,
        }
    }
}

/// Future resolving after a requested sleep.
pub struct SleepWait {
    mb: Rc<RefCell<Mailbox>>,
    dur: SimDuration,
    armed: bool,
}

impl Future for SleepWait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.armed {
            Poll::Ready(())
        } else {
            self.armed = true;
            self.mb.borrow_mut().sleep = Some(self.dur);
            Poll::Pending
        }
    }
}

/// A coroutine operation packaged as a schedulable task.
pub struct CoroTask {
    mb: Rc<RefCell<Mailbox>>,
    future: Pin<Box<dyn Future<Output = ()>>>,
    finished: bool,
}

impl CoroTask {
    /// Wraps the future produced by an `async fn` operation. The future must
    /// have been built over `ctx` (so the task wrapper and the body share
    /// the same mailbox).
    pub fn new(ctx: &OpCtx, future: impl Future<Output = ()> + 'static) -> Self {
        CoroTask {
            mb: Rc::clone(&ctx.mb),
            future: Box::pin(future),
            finished: false,
        }
    }
}

impl SoftTask for CoroTask {
    fn advance(&mut self, now: SimTime) -> TaskStatus {
        if self.finished {
            return TaskStatus::Finished;
        }
        self.mb.borrow_mut().now = now;
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        match self.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.finished = true;
                TaskStatus::Finished
            }
            Poll::Pending => TaskStatus::Blocked,
        }
    }

    fn drain_outbox(&mut self) -> Vec<(u64, Transaction)> {
        std::mem::take(&mut self.mb.borrow_mut().outbox)
    }

    fn deliver(&mut self, local_ticket: u64, result: TxnResult) {
        self.mb.borrow_mut().results.insert(local_ticket, result);
    }

    fn take_sleep(&mut self) -> Option<SimDuration> {
        self.mb.borrow_mut().sleep.take()
    }

    fn drain_staged(&mut self, out: &mut Vec<(u64, PageBuf)>) {
        out.append(&mut self.mb.borrow_mut().staged);
    }

    fn attach_pool(&mut self, pool: &BufPool) {
        self.mb.borrow_mut().pool = pool.clone();
    }

    fn take_steps(&mut self) -> u32 {
        std::mem::take(&mut self.mb.borrow_mut().steps)
    }

    fn take_outcome(&mut self) -> Option<Result<(), OpError>> {
        self.mb.borrow_mut().outcome.take()
    }

    fn meta(&self) -> TaskMeta {
        let mb = self.mb.borrow();
        TaskMeta {
            lun: mb.lun,
            priority: mb.priority,
        }
    }

    fn op_id(&self) -> u64 {
        self.mb.borrow().op_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use babol_onfi::bus::ChipMask;
    use babol_onfi::opcode::op;
    use babol_ufsm::{DmaDest, Latch, PostWait};

    fn status_txn() -> Transaction {
        Transaction::new(ChipMask::single(0))
            .ca(vec![Latch::Cmd(op::READ_STATUS)], PostWait::Whr)
            .read(1, DmaDest::Inline)
    }

    #[test]
    fn task_blocks_on_txn_and_resumes_with_result() {
        let ctx = OpCtx::new(0, 0);
        let body = {
            let ctx = ctx.clone();
            async move {
                let r = ctx.submit(status_txn()).await;
                ctx.set_outcome(if r.inline[0] & 0x40 != 0 {
                    Ok(())
                } else {
                    Err(OpError::Timeout)
                });
            }
        };
        let mut task = CoroTask::new(&ctx, body);
        // First advance: submits and blocks.
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        assert_eq!(out.len(), 1);
        assert!(task.take_outcome().is_none());
        // Deliver the result; next advance finishes.
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0xE0],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert_eq!(task.take_outcome(), Some(Ok(())));
    }

    #[test]
    fn polling_loop_submits_one_txn_per_advance() {
        let ctx = OpCtx::new(2, 0);
        let body = {
            let ctx = ctx.clone();
            async move {
                // The paper's Algorithm 1 loop: poll until ready.
                loop {
                    let r = ctx.submit(status_txn()).await;
                    ctx.step();
                    if r.inline[0] & 0x40 != 0 {
                        break;
                    }
                }
                ctx.set_outcome(Ok(()));
            }
        };
        let mut task = CoroTask::new(&ctx, body);
        // Three busy polls, then ready.
        for i in 0..3 {
            assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked, "poll {i}");
            let out = task.drain_outbox();
            assert_eq!(out.len(), 1);
            task.deliver(
                out[0].0,
                TxnResult {
                    inline: vec![0x00],
                    end: SimTime::ZERO,
                },
            );
        }
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        let out = task.drain_outbox();
        task.deliver(
            out[0].0,
            TxnResult {
                inline: vec![0x60],
                end: SimTime::ZERO,
            },
        );
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
        assert_eq!(task.take_steps(), 4); // one body step per poll iteration
    }

    #[test]
    fn sleep_parks_then_resumes() {
        let ctx = OpCtx::new(0, 0);
        let body = {
            let ctx = ctx.clone();
            async move {
                ctx.sleep(SimDuration::from_micros(5)).await;
                ctx.set_outcome(Ok(()));
            }
        };
        let mut task = CoroTask::new(&ctx, body);
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Blocked);
        assert_eq!(task.take_sleep(), Some(SimDuration::from_micros(5)));
        assert_eq!(task.advance(SimTime::ZERO), TaskStatus::Finished);
    }

    #[test]
    fn meta_reflects_ctx() {
        let ctx = OpCtx::new(5, 9);
        let task = CoroTask::new(&ctx, async {});
        assert_eq!(
            task.meta(),
            TaskMeta {
                lun: 5,
                priority: 9
            }
        );
    }
}

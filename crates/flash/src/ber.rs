//! The raw bit-error-rate model.
//!
//! NAND flash is a faulty medium; the controller stack exists in part to
//! hide that (paper §II: "ECC techniques are necessary to identify and fix
//! some of the errors"). The reproduction models the *raw* BER a page
//! exhibits when read, as a function of:
//!
//! * cell technology — SLC cells are orders of magnitude more reliable than
//!   TLC/QLC;
//! * wear — BER grows with a block's program/erase count;
//! * read level — vendor read-retry levels step the sensing voltage and can
//!   reduce the error rate of a marginal page (this is what READs with
//!   retries exploit);
//! * pSLC mode — using TLC cells as SLC buys both speed and reliability
//!   (paper's Algorithm 3 motivation).
//!
//! The absolute values are representative of published characterization
//! studies (Cai et al., Proc. IEEE 2017) rather than any specific part; the
//! ECC tests only rely on the *ordering* of regimes.

/// Cell technology of a flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// One bit per cell.
    Slc,
    /// Two bits per cell.
    Mlc,
    /// Three bits per cell.
    Tlc,
    /// Four bits per cell.
    Qlc,
}

impl CellType {
    /// Bits stored per cell.
    pub const fn bits(self) -> u32 {
        match self {
            CellType::Slc => 1,
            CellType::Mlc => 2,
            CellType::Tlc => 3,
            CellType::Qlc => 4,
        }
    }

    /// Raw BER of a fresh (unworn) block at the default read level.
    pub const fn base_ber(self) -> f64 {
        match self {
            CellType::Slc => 1e-9,
            CellType::Mlc => 1e-7,
            CellType::Tlc => 5e-6,
            CellType::Qlc => 5e-5,
        }
    }

    /// Rated program/erase endurance.
    pub const fn endurance(self) -> u64 {
        match self {
            CellType::Slc => 100_000,
            CellType::Mlc => 10_000,
            CellType::Tlc => 3_000,
            CellType::Qlc => 1_000,
        }
    }
}

/// Parameters of one raw-BER evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerContext {
    /// Cell technology the page was programmed with.
    pub cell: CellType,
    /// Program/erase cycles the block has endured.
    pub pe_cycles: u64,
    /// Vendor read-retry level in effect (0 = default sensing voltage).
    pub retry_level: u8,
    /// Whether the page was programmed in pSLC mode.
    pub pslc: bool,
}

/// Number of distinct read-retry levels the model recognises.
pub const MAX_RETRY_LEVEL: u8 = 7;

/// Computes the raw bit error rate for a read performed under `ctx`.
///
/// Monotonic in wear; minimized at a part-specific "best" retry level
/// (level 3 here) so retry loops have something to find.
///
/// # Examples
///
/// ```
/// use babol_flash::ber::{raw_ber, BerContext, CellType};
///
/// let fresh = BerContext { cell: CellType::Tlc, pe_cycles: 0, retry_level: 0, pslc: false };
/// let worn = BerContext { pe_cycles: 3_000, ..fresh };
/// assert!(raw_ber(worn) > raw_ber(fresh));
///
/// let slc = BerContext { pslc: true, ..worn };
/// assert!(raw_ber(slc) < raw_ber(worn) / 10.0);
/// ```
pub fn raw_ber(ctx: BerContext) -> f64 {
    let effective_cell = if ctx.pslc { CellType::Slc } else { ctx.cell };
    let base = effective_cell.base_ber();
    // Wear term: quadratic growth normalized to the rated endurance, a shape
    // consistent with published P/E characterization.
    let wear = ctx.pe_cycles as f64 / effective_cell.endurance() as f64;
    let wear_factor = 1.0 + 40.0 * wear * wear + 4.0 * wear;
    // Retry term: level 3 is optimal and halves the BER twice; levels beyond
    // overshoot the threshold and make things worse again.
    let retry = ctx.retry_level.min(MAX_RETRY_LEVEL) as f64;
    let retry_factor = 0.25 + 0.75 * ((retry - 3.0) / 3.0).powi(2);
    base * wear_factor * retry_factor
}

/// The retry level minimizing BER for this model (used by tests and by the
/// read-retry example).
pub const BEST_RETRY_LEVEL: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BerContext {
        BerContext {
            cell: CellType::Tlc,
            pe_cycles: 1_000,
            retry_level: 0,
            pslc: false,
        }
    }

    #[test]
    fn cell_ordering() {
        assert!(CellType::Slc.base_ber() < CellType::Mlc.base_ber());
        assert!(CellType::Mlc.base_ber() < CellType::Tlc.base_ber());
        assert!(CellType::Tlc.base_ber() < CellType::Qlc.base_ber());
    }

    #[test]
    fn endurance_ordering_is_inverse_of_density() {
        assert!(CellType::Slc.endurance() > CellType::Mlc.endurance());
        assert!(CellType::Tlc.endurance() > CellType::Qlc.endurance());
        assert_eq!(CellType::Qlc.bits(), 4);
    }

    #[test]
    fn wear_increases_ber_monotonically() {
        let mut prev = 0.0;
        for pe in [0u64, 500, 1_000, 2_000, 3_000, 6_000] {
            let b = raw_ber(BerContext {
                pe_cycles: pe,
                ..ctx()
            });
            assert!(b > prev, "pe={pe}");
            prev = b;
        }
    }

    #[test]
    fn best_retry_level_minimizes_ber() {
        let bers: Vec<f64> = (0..=MAX_RETRY_LEVEL)
            .map(|lvl| {
                raw_ber(BerContext {
                    retry_level: lvl,
                    ..ctx()
                })
            })
            .collect();
        let min_idx = bers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_idx as u8, BEST_RETRY_LEVEL);
        // And the improvement is substantial (the point of retry reads).
        assert!(bers[BEST_RETRY_LEVEL as usize] < bers[0] / 2.0);
    }

    #[test]
    fn pslc_beats_native_tlc_dramatically() {
        let native = raw_ber(ctx());
        let pslc = raw_ber(BerContext {
            pslc: true,
            ..ctx()
        });
        assert!(pslc < native / 100.0);
    }

    #[test]
    fn retry_level_saturates() {
        let at_max = raw_ber(BerContext {
            retry_level: MAX_RETRY_LEVEL,
            ..ctx()
        });
        let beyond = raw_ber(BerContext {
            retry_level: 200,
            ..ctx()
        });
        assert_eq!(at_max, beyond);
    }
}

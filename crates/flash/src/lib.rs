//! NAND flash package substrate.
//!
//! The BABOL paper drives real commercial flash packages (Hynix, Toshiba,
//! Micron SO-DIMMs on the Cosmos+ OpenSSD board). This crate substitutes
//! them with an event-driven model faithful to what the controller can
//! observe: the ONFI command decode at the pins, the busy times of array
//! operations (tR/tPROG/tBERS with per-package values from the paper's
//! Table I), the page/cache register pipeline, status reporting, vendor
//! extensions (pSLC, read retry, suspend), and a raw bit-error process for
//! the ECC path.
//!
//! Module map:
//!
//! * [`geometry`] — page/block/plane/LUN geometry and capacity math.
//! * [`profile`] — the three commercial package profiles used in the paper
//!   plus a tiny test profile.
//! * [`ber`] — the raw bit-error-rate model (cell type, P/E wear, read-retry
//!   level, pSLC).
//! * [`mod@array`] — the stored bits: block/page state machine, erase counts,
//!   sparse content with deterministic preload.
//! * [`lun`] — the LUN: an ONFI command decoder plus array timing engine;
//!   the thing a channel talks to.
//! * [`error`] — error types shared by the crate.

pub mod array;
pub mod ber;
pub mod error;
pub mod geometry;
pub mod lun;
pub mod profile;

pub use error::{FlashError, LunError};
pub use geometry::Geometry;
pub use lun::{BusyKind, Lun, LunResponse};
pub use profile::PackageProfile;

//! Flash package geometry.
//!
//! A package carries one or more LUNs; each LUN has planes; each plane has
//! blocks; each block has pages. The paper's packages use 16 KiB pages
//! (Table I). Geometry determines address-cycle layout, capacity, and the
//! legality of multi-plane operations.

use babol_onfi::addr::{AddrLayout, RowAddr};

/// Physical geometry of one flash package.
///
/// # Examples
///
/// ```
/// use babol_flash::Geometry;
///
/// let g = Geometry::paper_16k();
/// assert_eq!(g.page_size, 16384);
/// assert!(g.contains(babol_onfi::addr::RowAddr { lun: 0, block: 0, page: 0 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Data bytes per page.
    pub page_size: usize,
    /// Out-of-band (spare) bytes per page, available for ECC parity.
    pub spare_size: usize,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Planes per LUN.
    pub planes: u32,
    /// LUNs per package.
    pub luns: u32,
}

impl Geometry {
    /// The 16 KiB-page geometry matching the paper's packages (Table I).
    pub const fn paper_16k() -> Self {
        Geometry {
            page_size: 16384,
            spare_size: 1872,
            pages_per_block: 256,
            blocks_per_plane: 512,
            planes: 2,
            luns: 1,
        }
    }

    /// A small geometry for fast tests.
    pub const fn tiny() -> Self {
        Geometry {
            page_size: 512,
            spare_size: 64,
            pages_per_block: 8,
            blocks_per_plane: 4,
            planes: 2,
            luns: 1,
        }
    }

    /// Blocks per LUN across all planes.
    pub const fn blocks_per_lun(&self) -> u32 {
        self.blocks_per_plane * self.planes
    }

    /// Pages per LUN.
    pub const fn pages_per_lun(&self) -> u64 {
        self.blocks_per_lun() as u64 * self.pages_per_block as u64
    }

    /// Data capacity of one LUN in bytes.
    pub const fn lun_capacity(&self) -> u64 {
        self.pages_per_lun() * self.page_size as u64
    }

    /// Full page size including spare area.
    pub const fn raw_page_size(&self) -> usize {
        self.page_size + self.spare_size
    }

    /// The plane a block belongs to (planes interleave by low block bits,
    /// the common ONFI convention).
    pub const fn plane_of(&self, block: u32) -> u32 {
        block % self.planes
    }

    /// Whether a row address is inside this geometry (LUN field checked
    /// against the per-package LUN count).
    pub fn contains(&self, row: RowAddr) -> bool {
        row.lun < self.luns && row.block < self.blocks_per_lun() && row.page < self.pages_per_block
    }

    /// Derives the ONFI address-cycle layout for this geometry. The `luns`
    /// argument is the channel-level LUN count (addressing must cover every
    /// LUN wired to the channel, which may span several packages).
    pub fn addr_layout(&self, channel_luns: u32) -> AddrLayout {
        AddrLayout::new(
            self.page_size,
            self.pages_per_block,
            self.blocks_per_lun(),
            channel_luns.max(self.luns),
        )
    }

    /// Linear page index of a row within its LUN (for storage keys).
    pub fn page_index(&self, row: RowAddr) -> u64 {
        row.block as u64 * self.pages_per_block as u64 + row.page as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let g = Geometry::paper_16k();
        assert_eq!(g.blocks_per_lun(), 1024);
        assert_eq!(g.pages_per_lun(), 1024 * 256);
        assert_eq!(g.lun_capacity(), 1024 * 256 * 16384);
        assert_eq!(g.raw_page_size(), 16384 + 1872);
    }

    #[test]
    fn bounds_checking() {
        let g = Geometry::tiny();
        assert!(g.contains(RowAddr {
            lun: 0,
            block: 7,
            page: 7
        }));
        assert!(!g.contains(RowAddr {
            lun: 0,
            block: 8,
            page: 0
        }));
        assert!(!g.contains(RowAddr {
            lun: 0,
            block: 0,
            page: 8
        }));
        assert!(!g.contains(RowAddr {
            lun: 1,
            block: 0,
            page: 0
        }));
    }

    #[test]
    fn plane_interleaving() {
        let g = Geometry::tiny();
        assert_eq!(g.plane_of(0), 0);
        assert_eq!(g.plane_of(1), 1);
        assert_eq!(g.plane_of(2), 0);
    }

    #[test]
    fn addr_layout_covers_channel_luns() {
        let g = Geometry::paper_16k();
        let l = g.addr_layout(8);
        // 8 channel LUNs need 3 LUN bits even though the package has 1 LUN.
        assert_eq!(l.lun_bits, 3);
        assert_eq!(l.col_cycles, 2);
    }

    #[test]
    fn page_index_is_dense() {
        let g = Geometry::tiny();
        let mut seen = std::collections::BTreeSet::new();
        for block in 0..g.blocks_per_lun() {
            for page in 0..g.pages_per_block {
                assert!(seen.insert(g.page_index(RowAddr {
                    lun: 0,
                    block,
                    page
                })));
            }
        }
        assert_eq!(seen.len() as u64, g.pages_per_lun());
    }
}

//! The flash array: stored bits, block state, wear.
//!
//! A flash array only supports three bulk operations — read a page, program
//! a page, erase a block — with hard physical constraints: a page must be
//! erased before it can be programmed, pages within a block must be
//! programmed in order, and every erase wears the block out a little. The
//! FTL exists to live within these constraints; the LUN model enforces them
//! so that controller bugs surface as `FAIL` status bits, exactly as they
//! would on real silicon.
//!
//! Storage is sparse: experiment workloads address hundreds of megabytes,
//! so only explicitly written pages hold real bytes. A [`ContentMode`]
//! selects what unwritten pages contain: `Pristine` (erased, all `0xFF`) or
//! `Preloaded` (deterministic pseudo-random content, standing in for the
//! paper's "initialized the SSDs with data" step of §VI-C).

// Determinism allowlist: the page store is the hottest map in the
// simulator and is only ever used for keyed lookups — iteration order
// never reaches behavior or output (`scripts/lint.sh` documents the gate).
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use babol_onfi::addr::RowAddr;
use babol_sim::rng::SplitMix64;

use crate::error::FlashError;
use crate::geometry::Geometry;

/// What unwritten pages contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentMode {
    /// Factory-fresh: every page erased, reading returns `0xFF`.
    Pristine,
    /// Every page starts "programmed" with deterministic pseudo-random
    /// content derived from `seed` (cheap stand-in for a data fill).
    Preloaded {
        /// Seed of the deterministic content generator.
        seed: u64,
    },
}

/// Per-page lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased; programming is allowed.
    Erased,
    /// Programmed; must be erased before programming again.
    Programmed {
        /// Whether the page was programmed in pSLC mode.
        pslc: bool,
    },
}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
struct Block {
    erase_count: u64,
    /// Next page expected by the sequential-program rule, or `None` once the
    /// block has unknown (preloaded) state.
    next_page: u32,
    pages: Vec<PageState>,
}

/// The stored contents and state of one LUN's array.
#[derive(Debug, Clone)]
pub struct ArrayStore {
    geometry: Geometry,
    mode: ContentMode,
    blocks: Vec<Block>,
    /// Explicitly written raw pages, keyed by linear page index.
    data: HashMap<u64, Box<[u8]>>,
}

impl ArrayStore {
    /// Creates the array for `geometry` in the given content mode.
    pub fn new(geometry: Geometry, mode: ContentMode) -> Self {
        let initial = match mode {
            ContentMode::Pristine => PageState::Erased,
            ContentMode::Preloaded { .. } => PageState::Programmed { pslc: false },
        };
        let blocks = (0..geometry.blocks_per_lun())
            .map(|_| Block {
                erase_count: 0,
                next_page: 0,
                pages: vec![initial; geometry.pages_per_block as usize],
            })
            .collect();
        ArrayStore {
            geometry,
            mode,
            blocks,
            data: HashMap::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Reads the raw page (data + spare) at `row`.
    pub fn read_page(&self, row: RowAddr) -> Result<Vec<u8>, FlashError> {
        self.check(row)?;
        let idx = self.geometry.page_index(row);
        if let Some(bytes) = self.data.get(&idx) {
            return Ok(bytes.to_vec());
        }
        let state = self.blocks[row.block as usize].pages[row.page as usize];
        Ok(match (state, self.mode) {
            (PageState::Erased, _) => vec![0xFF; self.geometry.raw_page_size()],
            (PageState::Programmed { .. }, ContentMode::Preloaded { seed }) => {
                deterministic_page(seed, idx, self.geometry.raw_page_size())
            }
            // Programmed but never written in pristine mode cannot happen,
            // but answer erased content defensively.
            (PageState::Programmed { .. }, ContentMode::Pristine) => {
                vec![0xFF; self.geometry.raw_page_size()]
            }
        })
    }

    /// State of the page at `row`.
    pub fn page_state(&self, row: RowAddr) -> Result<PageState, FlashError> {
        self.check(row)?;
        Ok(self.blocks[row.block as usize].pages[row.page as usize])
    }

    /// Programs `data` (raw page: data + spare, shorter slices are padded
    /// with `0xFF`) into the page at `row`.
    ///
    /// Enforces the two physical rules: the page must be erased, and pages
    /// in a block must be programmed in ascending order.
    pub fn program_page(
        &mut self,
        row: RowAddr,
        data: &[u8],
        pslc: bool,
    ) -> Result<(), FlashError> {
        self.check(row)?;
        let raw_size = self.geometry.raw_page_size();
        if data.len() > raw_size {
            return Err(FlashError::DataTooLong {
                len: data.len(),
                max: raw_size,
            });
        }
        let block = &mut self.blocks[row.block as usize];
        match block.pages[row.page as usize] {
            PageState::Programmed { .. } => return Err(FlashError::ProgramOnProgrammed { row }),
            PageState::Erased => {}
        }
        if row.page != block.next_page {
            return Err(FlashError::OutOfOrderProgram {
                row,
                expected: block.next_page,
            });
        }
        let mut page = vec![0xFF; raw_size];
        page[..data.len()].copy_from_slice(data);
        self.data
            .insert(self.geometry.page_index(row), page.into_boxed_slice());
        block.pages[row.page as usize] = PageState::Programmed { pslc };
        block.next_page = row.page + 1;
        Ok(())
    }

    /// Erases the block containing `row` (the page field is ignored).
    pub fn erase_block(&mut self, row: RowAddr) -> Result<(), FlashError> {
        self.check(RowAddr { page: 0, ..row })?;
        let geometry = self.geometry;
        let block = &mut self.blocks[row.block as usize];
        block.erase_count += 1;
        block.next_page = 0;
        for p in block.pages.iter_mut() {
            *p = PageState::Erased;
        }
        let base = geometry.page_index(RowAddr { page: 0, ..row });
        for page in 0..geometry.pages_per_block as u64 {
            self.data.remove(&(base + page));
        }
        Ok(())
    }

    /// Program/erase cycles endured by `block`.
    pub fn erase_count(&self, block: u32) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// Number of pages holding explicit (host-resident) data.
    pub fn resident_pages(&self) -> usize {
        self.data.len()
    }

    fn check(&self, row: RowAddr) -> Result<(), FlashError> {
        // The LUN field is channel-level addressing; the store itself is
        // per-LUN, so only block/page bounds apply here.
        if row.block < self.geometry.blocks_per_lun() && row.page < self.geometry.pages_per_block {
            Ok(())
        } else {
            Err(FlashError::AddressOutOfRange { row })
        }
    }
}

/// Deterministic pseudo-random page content for preloaded arrays.
pub fn deterministic_page(seed: u64, page_index: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ page_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(block: u32, page: u32) -> RowAddr {
        RowAddr {
            lun: 0,
            block,
            page,
        }
    }

    fn pristine() -> ArrayStore {
        ArrayStore::new(Geometry::tiny(), ContentMode::Pristine)
    }

    #[test]
    fn erased_pages_read_ff() {
        let a = pristine();
        let page = a.read_page(row(0, 0)).unwrap();
        assert!(page.iter().all(|&b| b == 0xFF));
        assert_eq!(page.len(), Geometry::tiny().raw_page_size());
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut a = pristine();
        a.program_page(row(1, 0), b"hello flash", false).unwrap();
        let page = a.read_page(row(1, 0)).unwrap();
        assert_eq!(&page[..11], b"hello flash");
        assert!(page[11..].iter().all(|&b| b == 0xFF)); // padded
    }

    #[test]
    fn reprogram_without_erase_fails() {
        let mut a = pristine();
        a.program_page(row(0, 0), &[1], false).unwrap();
        assert!(matches!(
            a.program_page(row(0, 0), &[2], false),
            Err(FlashError::ProgramOnProgrammed { .. })
        ));
    }

    #[test]
    fn out_of_order_program_fails() {
        let mut a = pristine();
        assert!(matches!(
            a.program_page(row(0, 3), &[1], false),
            Err(FlashError::OutOfOrderProgram { expected: 0, .. })
        ));
        a.program_page(row(0, 0), &[1], false).unwrap();
        a.program_page(row(0, 1), &[1], false).unwrap();
        assert!(a.program_page(row(0, 3), &[1], false).is_err());
    }

    #[test]
    fn erase_resets_block_and_bumps_wear() {
        let mut a = pristine();
        a.program_page(row(0, 0), &[42], false).unwrap();
        a.erase_block(row(0, 0)).unwrap();
        assert_eq!(a.erase_count(0), 1);
        assert_eq!(a.page_state(row(0, 0)).unwrap(), PageState::Erased);
        assert!(a.read_page(row(0, 0)).unwrap().iter().all(|&b| b == 0xFF));
        // Programming page 0 again is now legal.
        a.program_page(row(0, 0), &[7], false).unwrap();
    }

    #[test]
    fn preloaded_pages_have_stable_content() {
        let a = ArrayStore::new(Geometry::tiny(), ContentMode::Preloaded { seed: 9 });
        let p1 = a.read_page(row(2, 3)).unwrap();
        let p2 = a.read_page(row(2, 3)).unwrap();
        assert_eq!(p1, p2);
        assert_ne!(p1, a.read_page(row(2, 4)).unwrap());
        // Preloaded pages are "programmed" and reject programming.
        assert_eq!(
            a.page_state(row(2, 3)).unwrap(),
            PageState::Programmed { pslc: false }
        );
    }

    #[test]
    fn preloaded_block_erase_then_program_works() {
        let mut a = ArrayStore::new(Geometry::tiny(), ContentMode::Preloaded { seed: 9 });
        a.erase_block(row(0, 0)).unwrap();
        a.program_page(row(0, 0), b"fresh", false).unwrap();
        assert_eq!(&a.read_page(row(0, 0)).unwrap()[..5], b"fresh");
    }

    #[test]
    fn bounds_are_enforced() {
        let a = pristine();
        assert!(matches!(
            a.read_page(row(99, 0)),
            Err(FlashError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn oversized_program_rejected() {
        let mut a = pristine();
        let too_big = vec![0u8; Geometry::tiny().raw_page_size() + 1];
        assert!(matches!(
            a.program_page(row(0, 0), &too_big, false),
            Err(FlashError::DataTooLong { .. })
        ));
    }

    #[test]
    fn storage_stays_sparse() {
        let mut a = pristine();
        a.program_page(row(0, 0), &[1], false).unwrap();
        assert_eq!(a.resident_pages(), 1);
        let b = ArrayStore::new(Geometry::paper_16k(), ContentMode::Preloaded { seed: 1 });
        assert_eq!(b.resident_pages(), 0); // preload is synthesized, not stored
    }

    #[test]
    fn pslc_flag_recorded() {
        let mut a = pristine();
        a.program_page(row(0, 0), &[1], true).unwrap();
        assert_eq!(
            a.page_state(row(0, 0)).unwrap(),
            PageState::Programmed { pslc: true }
        );
    }

    #[test]
    fn deterministic_page_depends_on_inputs() {
        assert_eq!(deterministic_page(1, 2, 64), deterministic_page(1, 2, 64));
        assert_ne!(deterministic_page(1, 2, 64), deterministic_page(1, 3, 64));
        assert_ne!(deterministic_page(1, 2, 64), deterministic_page(2, 2, 64));
        assert_eq!(deterministic_page(1, 2, 10).len(), 10);
    }
}

//! Commercial package profiles.
//!
//! The paper's Table I lists the three SO-DIMM package types used in its
//! experiments. The timing numbers below are lifted from that table; the
//! program/erase times and jitter are taken from the same parts' public
//! datasheet ranges (the paper's workloads are read-only because tR is the
//! *shortest* array time and therefore the hardest case for a software
//! controller — see §VI, Workloads).

use babol_sim::SimDuration;

use crate::ber::CellType;
use crate::geometry::Geometry;

/// Everything package-specific a LUN model needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageProfile {
    /// Human-readable name used in experiment output.
    pub name: &'static str,
    /// JEDEC manufacturer id returned by READ ID.
    pub manufacturer_id: u8,
    /// Device id returned by READ ID.
    pub device_id: u8,
    /// Physical geometry.
    pub geometry: Geometry,
    /// Cell technology (determines BER base and pSLC speedup).
    pub cell: CellType,
    /// Page read time tR (array to page register), nominal.
    pub t_r: SimDuration,
    /// tR in pSLC mode.
    pub t_r_slc: SimDuration,
    /// Page program time tPROG, nominal.
    pub t_prog: SimDuration,
    /// tPROG in pSLC mode.
    pub t_prog_slc: SimDuration,
    /// Block erase time tBERS, nominal.
    pub t_bers: SimDuration,
    /// RESET recovery time tRST (idle case).
    pub t_rst: SimDuration,
    /// Parameter-page fetch time.
    pub t_param: SimDuration,
    /// Relative jitter on array times, in percent (uniform ±).
    pub jitter_pct: u32,
    /// LUNs wired per channel on this SO-DIMM (Hynix/Toshiba: 8, Micron: 2).
    pub luns_per_channel: u32,
    /// Maximum NV-DDR2 rate the part supports, MT/s.
    pub max_mts: u32,
}

impl PackageProfile {
    /// Multi-plane queue window: 0x32 (MULTI PLANE NEXT) parks the plane's
    /// fetch behind a short fixed busy pulse.
    pub const PLANE_QUEUE_WINDOW: SimDuration = SimDuration::from_micros(1);
    /// READ CACHE END (0x3F) register shuffle window.
    pub const CACHE_END_WINDOW: SimDuration = SimDuration::from_micros(3);
    /// Suspend latency window before the LUN is usable (tESPD/tPSPD).
    pub const SUSPEND_WINDOW: SimDuration = SimDuration::from_micros(20);
    /// Resume penalty added on top of the remaining array time.
    pub const RESUME_PENALTY: SimDuration = SimDuration::from_micros(10);

    /// The Hynix package: tR = 100 µs, 8 LUNs per channel.
    pub fn hynix() -> Self {
        PackageProfile {
            name: "Hynix",
            manufacturer_id: 0xAD,
            device_id: 0xDE,
            geometry: Geometry::paper_16k(),
            cell: CellType::Tlc,
            t_r: SimDuration::from_micros(100),
            t_r_slc: SimDuration::from_micros(35),
            t_prog: SimDuration::from_micros(700),
            t_prog_slc: SimDuration::from_micros(200),
            t_bers: SimDuration::from_millis(5),
            t_rst: SimDuration::from_micros(50),
            t_param: SimDuration::from_micros(25),
            jitter_pct: 8,
            luns_per_channel: 8,
            max_mts: 200,
        }
    }

    /// The Toshiba package: tR = 78 µs, 8 LUNs per channel.
    pub fn toshiba() -> Self {
        PackageProfile {
            name: "Toshiba",
            manufacturer_id: 0x98,
            device_id: 0x3A,
            geometry: Geometry::paper_16k(),
            cell: CellType::Tlc,
            t_r: SimDuration::from_micros(78),
            t_r_slc: SimDuration::from_micros(28),
            t_prog: SimDuration::from_micros(560),
            t_prog_slc: SimDuration::from_micros(170),
            t_bers: SimDuration::from_millis(4),
            t_rst: SimDuration::from_micros(50),
            t_param: SimDuration::from_micros(25),
            jitter_pct: 8,
            luns_per_channel: 8,
            max_mts: 200,
        }
    }

    /// The Micron package: tR = 53 µs, only 2 LUNs wired per channel.
    pub fn micron() -> Self {
        PackageProfile {
            name: "Micron",
            manufacturer_id: 0x2C,
            device_id: 0xB7,
            geometry: Geometry::paper_16k(),
            cell: CellType::Mlc,
            t_r: SimDuration::from_micros(53),
            t_r_slc: SimDuration::from_micros(22),
            t_prog: SimDuration::from_micros(420),
            t_prog_slc: SimDuration::from_micros(140),
            t_bers: SimDuration::from_millis(3),
            t_rst: SimDuration::from_micros(50),
            t_param: SimDuration::from_micros(25),
            jitter_pct: 8,
            luns_per_channel: 2,
            max_mts: 200,
        }
    }

    /// A miniature package for unit tests: tiny geometry, microsecond-scale
    /// timings, no jitter.
    pub fn test_tiny() -> Self {
        PackageProfile {
            name: "TestTiny",
            manufacturer_id: 0x01,
            device_id: 0x02,
            geometry: Geometry::tiny(),
            cell: CellType::Slc,
            t_r: SimDuration::from_micros(10),
            t_r_slc: SimDuration::from_micros(5),
            t_prog: SimDuration::from_micros(40),
            t_prog_slc: SimDuration::from_micros(15),
            t_bers: SimDuration::from_micros(100),
            t_rst: SimDuration::from_micros(5),
            t_param: SimDuration::from_micros(2),
            jitter_pct: 0,
            luns_per_channel: 4,
            max_mts: 200,
        }
    }

    /// The canonical address-cycle layout controllers must use with this
    /// package. LUN models always decode with the 16-LUN channel layout, so
    /// controllers must pack with the same one.
    pub fn layout(&self) -> babol_onfi::addr::AddrLayout {
        self.geometry.addr_layout(16)
    }

    /// The three packages evaluated in the paper, in Table I order.
    pub fn paper_set() -> Vec<PackageProfile> {
        vec![Self::hynix(), Self::toshiba(), Self::micron()]
    }

    /// The inclusive jitter envelope `[min, max]` the LUN model can draw
    /// for a nominal array time. Mirrors `Lun::jittered` exactly: with
    /// `jitter_pct == 0` the draw is the nominal; otherwise the draw is
    /// uniform over `nominal ± nominal * jitter_pct / 100` (integer
    /// picosecond arithmetic, both bounds attainable).
    pub fn jitter_bounds(&self, nominal: SimDuration) -> (SimDuration, SimDuration) {
        let pct = self.jitter_pct as u64;
        if pct == 0 {
            return (nominal, nominal);
        }
        let span = nominal.as_picos() * pct / 100;
        (
            SimDuration::from_picos(nominal.as_picos() - span),
            SimDuration::from_picos(nominal.as_picos() + span),
        )
    }

    /// The longest array-busy window any single command can open on this
    /// package, worst case: the jitter maximum over every nominal array
    /// time plus the fixed suspend/resume windows (a resumed erase serves
    /// its remaining time plus the resume penalty). This is the bound a
    /// static analyzer must assume for a busy poll of unknown cause.
    pub fn worst_array_window(&self) -> SimDuration {
        let nominals = [
            self.t_r,
            self.t_r_slc,
            self.t_prog,
            self.t_prog_slc,
            self.t_bers,
            self.t_rst,
            self.t_param,
        ];
        let longest = nominals
            .iter()
            .map(|&n| self.jitter_bounds(n).1)
            .max()
            .expect("non-empty");
        longest + Self::SUSPEND_WINDOW + Self::RESUME_PENALTY
    }

    /// The ONFI parameter page this package reports.
    pub fn param_page(&self) -> babol_onfi::param_page::ParamPage {
        babol_onfi::param_page::ParamPage {
            manufacturer: self.name.to_uppercase(),
            model: format!("{}-16K", self.name.to_uppercase()),
            page_size: self.geometry.page_size as u32,
            spare_size: self.geometry.spare_size as u16,
            pages_per_block: self.geometry.pages_per_block,
            blocks_per_lun: self.geometry.blocks_per_lun(),
            luns: self.geometry.luns as u8,
            nv_ddr2_modes: 0b0011_1111,
            max_mts: self.max_mts as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_read_times() {
        assert_eq!(PackageProfile::hynix().t_r, SimDuration::from_micros(100));
        assert_eq!(PackageProfile::toshiba().t_r, SimDuration::from_micros(78));
        assert_eq!(PackageProfile::micron().t_r, SimDuration::from_micros(53));
    }

    #[test]
    fn table1_page_size() {
        for p in PackageProfile::paper_set() {
            assert_eq!(p.geometry.page_size, 16384, "{}", p.name);
        }
    }

    #[test]
    fn channel_wiring_matches_paper() {
        assert_eq!(PackageProfile::hynix().luns_per_channel, 8);
        assert_eq!(PackageProfile::toshiba().luns_per_channel, 8);
        assert_eq!(PackageProfile::micron().luns_per_channel, 2);
    }

    #[test]
    fn slc_mode_is_faster() {
        for p in PackageProfile::paper_set() {
            assert!(p.t_r_slc < p.t_r, "{}", p.name);
            assert!(p.t_prog_slc < p.t_prog, "{}", p.name);
        }
    }

    #[test]
    fn jitter_bounds_bracket_the_nominal() {
        let p = PackageProfile::hynix(); // 8% jitter
        let (lo, hi) = p.jitter_bounds(p.t_r);
        assert_eq!(lo, SimDuration::from_micros(92));
        assert_eq!(hi, SimDuration::from_micros(108));
        let tiny = PackageProfile::test_tiny(); // no jitter: point interval
        assert_eq!(tiny.jitter_bounds(tiny.t_prog), (tiny.t_prog, tiny.t_prog));
    }

    #[test]
    fn worst_array_window_dominated_by_erase() {
        for p in PackageProfile::paper_set() {
            let w = p.worst_array_window();
            assert!(w >= p.jitter_bounds(p.t_bers).1, "{}", p.name);
            assert!(
                w == p.jitter_bounds(p.t_bers).1
                    + PackageProfile::SUSPEND_WINDOW
                    + PackageProfile::RESUME_PENALTY,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn param_page_roundtrips() {
        let p = PackageProfile::hynix();
        let page = p.param_page();
        let parsed = babol_onfi::param_page::ParamPage::from_bytes(&page.to_bytes()).unwrap();
        assert_eq!(parsed.page_size, 16384);
        assert_eq!(parsed.manufacturer, "HYNIX");
        assert_eq!(parsed.max_mts, 200);
    }
}

//! The LUN: an ONFI command decoder wired to a timed flash array.
//!
//! A LUN is what a channel controller actually converses with. It receives
//! waveform phases (command latches, address latches, data bursts), decodes
//! them according to the ONFI operation grammar, runs array operations that
//! take real time (tR, tPROG, tBERS — Table I of the paper), and reports
//! progress through its status register and the R/B# line.
//!
//! The model is *lazy*: a busy period is represented as a deadline, and the
//! next interaction resolves it if the deadline has passed. Callers that
//! need the R/B# edge (the hardware-baseline controllers watch the pin
//! directly) read [`Lun::busy_until`].
//!
//! Supported operation grammar (beyond the basic READ/PROGRAM/ERASE):
//! CHANGE READ/WRITE COLUMN, RANDOM DATA OUT (plane select), READ CACHE
//! (sequential and end), CACHE PROGRAM, multi-plane queueing, READ STATUS
//! (plain and enhanced), READ ID, READ PARAMETER PAGE, GET/SET FEATURES
//! (including timing-mode switches), RESET, and the vendor extensions the
//! paper highlights: pSLC prefix, read-retry prefix, program/erase suspend
//! and resume.

use babol_onfi::addr::{AddrLayout, RowAddr};
use babol_onfi::bus::PhaseKind;
use babol_onfi::feature::{addr as feat, FeatureSet};
use babol_onfi::opcode::{mnemonic, op};
use babol_onfi::status::Status;
use babol_onfi::timing::DataInterface;
use babol_sim::rng::SplitMix64;
use babol_sim::{BufPool, PageBuf, PageBufMut, SimDuration, SimTime};
use babol_trace::IntervalSet;

use crate::array::{ArrayStore, ContentMode};
use crate::ber::{raw_ber, BerContext};
use crate::error::LunError;
use crate::profile::PackageProfile;

/// Configuration of one LUN instance.
#[derive(Debug, Clone)]
pub struct LunConfig {
    /// The package this LUN belongs to.
    pub profile: PackageProfile,
    /// What unwritten pages contain.
    pub content: ContentMode,
    /// Seed for latency jitter, error injection, and the hidden DQS phase.
    pub seed: u64,
    /// Whether reads suffer raw bit errors (off for throughput experiments,
    /// on for the ECC path).
    pub inject_errors: bool,
    /// Whether the boot contract is enforced: RESET plus DQS-phase
    /// calibration before high-speed bulk data phases (paper §IV-C).
    pub require_init: bool,
}

impl LunConfig {
    /// A convenient test configuration: tiny geometry, pristine content, no
    /// error injection, no boot contract.
    pub fn test_default() -> Self {
        LunConfig {
            profile: PackageProfile::test_tiny(),
            content: ContentMode::Pristine,
            seed: 1,
            inject_errors: false,
            require_init: false,
        }
    }
}

/// Why a LUN is busy; exposed for traces and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusyKind {
    /// Array fetch into the page register (tR).
    Read,
    /// Array fetch of the *next* page while the cache register streams
    /// (cache read; LUN stays command-ready).
    CacheRead,
    /// Page program (tPROG).
    Program,
    /// Page program with cache handoff (status ready early).
    CacheProgram,
    /// Block erase (tBERS).
    Erase,
    /// RESET recovery.
    Reset,
    /// Parameter-page fetch.
    ParamPage,
    /// Short interleave window of a multi-plane queue cycle.
    PlaneQueue,
    /// Suspend latency window.
    Suspending,
}

impl BusyKind {
    /// Whether the LUN still accepts data-out phases during this busy kind.
    fn allows_data_out(&self) -> bool {
        matches!(self, BusyKind::CacheRead | BusyKind::CacheProgram)
    }
}

#[derive(Debug, Clone)]
struct Busy {
    until: SimTime,
    kind: BusyKind,
    /// Action to apply when the deadline passes.
    effect: Effect,
}

#[derive(Debug, Clone)]
enum Effect {
    LoadPage {
        rows: Vec<RowAddr>,
        col: u32,
        pslc: bool,
        into_cache_next: Option<RowAddr>,
    },
    CommitProgram {
        row: RowAddr,
        pslc: bool,
    },
    CommitErase {
        row: RowAddr,
    },
    FinishReset,
    LoadParamPage,
    None,
}

#[derive(Debug, Clone)]
struct Suspended {
    remaining: SimDuration,
    kind: BusyKind,
    effect: Effect,
}

/// Decode state of the ONFI grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Decode {
    Idle,
    ReadAddr,
    ReadConfirm { row: RowAddr, col: u32 },
    ChgRdColAddr { full: bool },
    ChgRdColConfirm { row: Option<RowAddr>, col: u32 },
    ProgAddr,
    ProgData { row: RowAddr },
    ChgWrColAddr { row: RowAddr },
    EraseAddr,
    EraseConfirm { row: RowAddr },
    FeatAddrSet,
    FeatData { feature: u8 },
    FeatAddrGet,
    IdAddr,
    ParamAddr,
}

impl Decode {
    fn name(&self) -> &'static str {
        match self {
            Decode::Idle => "Idle",
            Decode::ReadAddr => "ReadAddr",
            Decode::ReadConfirm { .. } => "ReadConfirm",
            Decode::ChgRdColAddr { .. } => "ChgRdColAddr",
            Decode::ChgRdColConfirm { .. } => "ChgRdColConfirm",
            Decode::ProgAddr => "ProgAddr",
            Decode::ProgData { .. } => "ProgData",
            Decode::ChgWrColAddr { .. } => "ChgWrColAddr",
            Decode::EraseAddr => "EraseAddr",
            Decode::EraseConfirm { .. } => "EraseConfirm",
            Decode::FeatAddrSet => "FeatAddrSet",
            Decode::FeatData { .. } => "FeatData",
            Decode::FeatAddrGet => "FeatAddrGet",
            Decode::IdAddr => "IdAddr",
            Decode::ParamAddr => "ParamAddr",
        }
    }
}

/// Where data-out phases currently stream from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutSource {
    None,
    Status,
    Features(u8),
    Id,
    ParamPage,
    PageRegister,
    CacheRegister,
}

/// The LUN's reply to a delivered phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LunResponse {
    /// Phase consumed; nothing flows back.
    Accepted,
    /// Bytes flowing back to the controller (data-out phases). The payload
    /// is a pooled [`PageBuf`]: filled once here, read in place downstream.
    Data(PageBuf),
}

/// Running statistics, used by experiments and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LunStats {
    /// Completed array reads (pages fetched).
    pub reads: u64,
    /// Completed page programs.
    pub programs: u64,
    /// Program pulses applied, successful or not. The array draws program
    /// energy for the pulse whether or not the commit is accepted, so
    /// energy accounting keys off attempts, not successes.
    pub program_attempts: u64,
    /// Completed block erases.
    pub erases: u64,
    /// Erase pulses applied, successful or not (energy accounting keys off
    /// attempts for the same reason as `program_attempts`).
    pub erase_attempts: u64,
    /// Status queries served.
    pub status_polls: u64,
    /// Data bytes streamed out.
    pub bytes_out: u64,
    /// Data bytes streamed in.
    pub bytes_in: u64,
}

/// One logical unit of a flash package.
pub struct Lun {
    cfg: LunConfig,
    layout: AddrLayout,
    array: ArrayStore,
    features: FeatureSet,
    iface: DataInterface,
    decode: Decode,
    out: OutSource,
    out_before_status: OutSource,
    col: u32,
    active_plane: u32,
    page_regs: Vec<Vec<u8>>,
    cache_reg: Vec<u8>,
    param_buf: Vec<u8>,
    busy: Option<Busy>,
    suspended: Option<Suspended>,
    pslc_armed: bool,
    retry_armed: bool,
    queued_rows: Vec<RowAddr>,
    initialized: bool,
    configured_phase: Option<u8>,
    required_phase: u8,
    last_fail: bool,
    last_row: Option<RowAddr>,
    rng: SplitMix64,
    stats: LunStats,
    pool: BufPool,
    /// Array busy/idle interval accounting (opt-in, pure bookkeeping).
    track_busy: bool,
    busy_log: IntervalSet,
}

impl std::fmt::Debug for Lun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lun")
            .field("profile", &self.cfg.profile.name)
            .field("decode", &self.decode.name())
            .field("busy", &self.busy.as_ref().map(|b| b.kind.clone()))
            .finish()
    }
}

impl Lun {
    /// Creates a LUN from its configuration.
    pub fn new(cfg: LunConfig) -> Self {
        let geometry = cfg.profile.geometry;
        let mut rng = SplitMix64::new(cfg.seed);
        let required_phase = rng.next_below(8) as u8;
        let raw = geometry.raw_page_size();
        Lun {
            layout: geometry.addr_layout(16),
            array: ArrayStore::new(geometry, cfg.content),
            features: FeatureSet::new(),
            iface: DataInterface::Sdr { mode: 0 },
            decode: Decode::Idle,
            out: OutSource::None,
            out_before_status: OutSource::None,
            col: 0,
            active_plane: 0,
            page_regs: vec![vec![0xFF; raw]; geometry.planes as usize],
            cache_reg: vec![0xFF; raw],
            param_buf: Vec::new(),
            busy: None,
            suspended: None,
            pslc_armed: false,
            retry_armed: false,
            queued_rows: Vec::new(),
            initialized: !cfg.require_init,
            configured_phase: None,
            required_phase,
            last_fail: false,
            last_row: None,
            rng,
            stats: LunStats::default(),
            pool: BufPool::new(raw),
            track_busy: false,
            busy_log: IntervalSet::new(),
            cfg,
        }
    }

    /// Shares a buffer pool with the rest of the data path; data-out
    /// responses recycle its buffers.
    pub fn set_pool(&mut self, pool: &BufPool) {
        self.pool = pool.clone();
    }

    /// Enables array busy/idle interval accounting: every busy period
    /// (tR, tPROG, tBERS, resets, suspend windows) is logged into an
    /// [`IntervalSet`] for windowed utilization queries. Off by default;
    /// pure bookkeeping, never changes timing or behaviour.
    pub fn set_busy_tracking(&mut self, on: bool) {
        self.track_busy = on;
    }

    /// The array busy intervals collected so far (empty unless
    /// [`Lun::set_busy_tracking`] was enabled).
    pub fn busy_intervals(&self) -> &IntervalSet {
        &self.busy_log
    }

    /// The package profile this LUN instantiates.
    pub fn profile(&self) -> &PackageProfile {
        &self.cfg.profile
    }

    /// Direct array access for workload setup and assertions.
    pub fn array(&self) -> &ArrayStore {
        &self.array
    }

    /// Mutable array access for test/workload preparation.
    pub fn array_mut(&mut self) -> &mut ArrayStore {
        &mut self.array
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LunStats {
        self.stats
    }

    /// The interface the LUN currently operates at (starts as SDR mode 0,
    /// raised via SET FEATURES).
    pub fn interface(&self) -> DataInterface {
        self.iface
    }

    /// Deadline of the current busy period — the time R/B# will rise — or
    /// `None` if the LUN is ready. Cache-busy periods report their deadline
    /// too, even though the LUN accepts commands during them.
    pub fn busy_until(&self) -> Option<SimTime> {
        self.busy.as_ref().map(|b| b.until)
    }

    /// Kind of the current busy period.
    pub fn busy_kind(&self) -> Option<BusyKind> {
        self.busy.as_ref().map(|b| b.kind.clone())
    }

    /// Sets the controller-side DQS drive phase for this LUN (the result of
    /// running the calibration tool; see `babol::calib`).
    pub fn set_drive_phase(&mut self, phase: u8) {
        self.configured_phase = Some(phase % 8);
    }

    /// The hidden board-trace phase the calibration must discover. Exposed
    /// for tests only; the calibration tool must *not* read this.
    pub fn required_phase_for_tests(&self) -> u8 {
        self.required_phase
    }

    /// The LUN's status register as of `now`.
    pub fn status(&mut self, now: SimTime) -> Status {
        self.refresh(now);
        self.current_status()
    }

    fn current_status(&self) -> Status {
        let mut st = match &self.busy {
            Some(b) if b.kind.allows_data_out() => Status::cache_busy(),
            Some(_) => Status::busy(),
            None => Status::ready(),
        };
        if self.last_fail {
            st = st.with_fail();
        }
        st
    }

    /// Delivers one waveform phase to the LUN. `now` is the time the phase
    /// *completes* on the bus (information is latched on trailing edges).
    pub fn phase(&mut self, now: SimTime, kind: &PhaseKind) -> Result<LunResponse, LunError> {
        self.refresh(now);
        match kind {
            PhaseKind::CmdLatch(opcode) => self.on_command(now, *opcode),
            PhaseKind::AddrLatch(bytes) => self.on_address(now, bytes),
            PhaseKind::DataIn(data) => self.on_data_in(now, data),
            PhaseKind::DataOut { bytes } => self.on_data_out(now, *bytes),
            PhaseKind::Pause => Ok(LunResponse::Accepted),
        }
    }

    /// Resolves a completed busy period, applying its effect.
    fn refresh(&mut self, now: SimTime) {
        let Some(busy) = &self.busy else { return };
        if now < busy.until {
            return;
        }
        let busy = self.busy.take().expect("just checked");
        match busy.effect {
            Effect::LoadPage {
                rows,
                col,
                pslc,
                into_cache_next,
            } => {
                for row in &rows {
                    let plane = self.array.geometry().plane_of(row.block) as usize;
                    let data = self.fetch_with_errors(*row, pslc);
                    self.page_regs[plane] = data;
                    self.stats.reads += 1;
                }
                if let Some(last) = rows.last() {
                    self.active_plane = self.array.geometry().plane_of(last.block);
                    self.last_row = Some(*last);
                }
                self.col = col;
                // In a cache read the freshly fetched page lands in the page
                // register while the previously moved page keeps streaming
                // from the cache register.
                if into_cache_next.is_none() {
                    self.set_bulk_out(OutSource::PageRegister);
                }
            }
            Effect::CommitProgram { row, pslc } => {
                self.stats.program_attempts += 1;
                let plane = self.array.geometry().plane_of(row.block) as usize;
                let data = self.page_regs[plane].clone();
                match self.array.program_page(row, &data, pslc) {
                    Ok(()) => {
                        self.last_fail = false;
                        self.stats.programs += 1;
                    }
                    Err(_) => self.last_fail = true,
                }
            }
            Effect::CommitErase { row } => {
                self.stats.erase_attempts += 1;
                match self.array.erase_block(row) {
                    Ok(()) => {
                        self.last_fail = false;
                        self.stats.erases += 1;
                    }
                    Err(_) => self.last_fail = true,
                }
            }
            Effect::FinishReset => {
                self.initialized = true;
            }
            Effect::LoadParamPage => {
                // ONFI mandates at least three copies of the page.
                let one = self.cfg.profile.param_page().to_bytes();
                let mut buf = Vec::with_capacity(one.len() * 3);
                for _ in 0..3 {
                    buf.extend_from_slice(&one);
                }
                self.param_buf = buf;
                self.col = 0;
                self.set_bulk_out(OutSource::ParamPage);
            }
            Effect::None => {}
        }
    }

    /// Selects the bulk data-output source. If a status readout is in
    /// progress (READ STATUS issued, not yet restored with 0x00), the new
    /// source is parked behind it instead of clobbering the status mode.
    fn set_bulk_out(&mut self, src: OutSource) {
        if self.out == OutSource::Status {
            self.out_before_status = src;
        } else {
            self.out = src;
        }
    }

    /// Array fetch plus the raw-bit-error process.
    fn fetch_with_errors(&mut self, row: RowAddr, pslc_read: bool) -> Vec<u8> {
        let mut data = self
            .array
            .read_page(row)
            .unwrap_or_else(|_| vec![0xFF; self.array.geometry().raw_page_size()]);
        if !self.cfg.inject_errors {
            return data;
        }
        let page_pslc = matches!(
            self.array.page_state(row),
            Ok(crate::array::PageState::Programmed { pslc: true })
        );
        let ctx = BerContext {
            cell: self.cfg.profile.cell,
            pe_cycles: self.array.erase_count(row.block),
            retry_level: self.features.read_retry_level(),
            pslc: page_pslc || pslc_read,
        };
        let bits = data.len() as f64 * 8.0;
        let lambda = raw_ber(ctx) * bits;
        let flips = poisson(&mut self.rng, lambda);
        for _ in 0..flips {
            let bit = self.rng.next_below(data.len() as u64 * 8);
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        data
    }

    fn jittered(&mut self, nominal: SimDuration) -> SimDuration {
        let pct = self.cfg.profile.jitter_pct as u64;
        if pct == 0 {
            return nominal;
        }
        let span = nominal.as_picos() * pct / 100;
        let offset = self.rng.next_below(2 * span + 1);
        SimDuration::from_picos(nominal.as_picos() - span + offset)
    }

    fn begin_busy(&mut self, now: SimTime, dur: SimDuration, kind: BusyKind, effect: Effect) {
        // Every array busy period — tR, tPROG, tBERS, reset, plane queues,
        // suspend windows — starts here, so this is the one place interval
        // accounting has to hook.
        if self.track_busy {
            self.busy_log.add(now, now + dur);
        }
        self.busy = Some(Busy {
            until: now + dur,
            kind,
            effect,
        });
    }

    fn on_command(&mut self, now: SimTime, opcode: u8) -> Result<LunResponse, LunError> {
        // Commands legal while busy.
        if let Some(busy) = &self.busy {
            let legal = matches!(
                opcode,
                op::READ_STATUS
                    | op::READ_STATUS_ENHANCED
                    | op::RESET
                    | op::SYNC_RESET
                    | op::PROGRAM_SUSPEND
                    | op::ERASE_SUSPEND
            ) || busy.kind.allows_data_out();
            if !legal {
                return Err(LunError::BusyViolation {
                    mnemonic: mnemonic(opcode),
                });
            }
        }
        match opcode {
            op::READ_STATUS | op::READ_STATUS_ENHANCED => {
                if self.out != OutSource::Status {
                    self.out_before_status = self.out;
                }
                self.out = OutSource::Status;
                self.decode = if opcode == op::READ_STATUS_ENHANCED {
                    // Enhanced form expects a row address before data-out;
                    // single-LUN model treats it as plain status.
                    Decode::Idle
                } else {
                    Decode::Idle
                };
                Ok(LunResponse::Accepted)
            }
            op::RESET | op::SYNC_RESET => {
                self.decode = Decode::Idle;
                self.out = OutSource::None;
                self.suspended = None;
                self.queued_rows.clear();
                self.pslc_armed = false;
                self.retry_armed = false;
                self.features.reset();
                self.iface = DataInterface::Sdr { mode: 0 };
                let dur = self.jittered(self.cfg.profile.t_rst);
                self.begin_busy(now, dur, BusyKind::Reset, Effect::FinishReset);
                Ok(LunResponse::Accepted)
            }
            op::PROGRAM_SUSPEND | op::ERASE_SUSPEND => self.on_suspend(now, opcode),
            op::SUSPEND_RESUME => self.on_resume(now),
            op::PSLC_PREFIX => {
                self.pslc_armed = true;
                Ok(LunResponse::Accepted)
            }
            op::READ_RETRY_PREFIX => {
                self.retry_armed = true;
                Ok(LunResponse::Accepted)
            }
            op::READ_1 => {
                // Either a new read sequence or a return-to-data-output after
                // a READ STATUS (ONFI 0x00 restore).
                if self.out == OutSource::Status {
                    self.out = match self.out_before_status {
                        OutSource::None | OutSource::Status => {
                            if matches!(self.busy_kind(), Some(k) if k.allows_data_out()) {
                                OutSource::CacheRegister
                            } else {
                                OutSource::PageRegister
                            }
                        }
                        other => other,
                    };
                }
                self.decode = Decode::ReadAddr;
                Ok(LunResponse::Accepted)
            }
            op::READ_2 => match std::mem::replace(&mut self.decode, Decode::Idle) {
                Decode::ReadConfirm { row, col } => {
                    let pslc = self.take_pslc(row);
                    let dur = self.jittered(if pslc {
                        self.cfg.profile.t_r_slc
                    } else {
                        self.cfg.profile.t_r
                    });
                    let mut rows = std::mem::take(&mut self.queued_rows);
                    rows.push(row);
                    self.out = OutSource::None;
                    self.begin_busy(
                        now,
                        dur,
                        BusyKind::Read,
                        Effect::LoadPage {
                            rows,
                            col,
                            pslc,
                            into_cache_next: None,
                        },
                    );
                    Ok(LunResponse::Accepted)
                }
                other => Err(unexpected(&other, "CMD READ(2)")),
            },
            op::MULTI_PLANE_NEXT => match std::mem::replace(&mut self.decode, Decode::Idle) {
                // 0x00 <addr> 0x32: queue this plane's fetch, stay ready for
                // the next 0x00.
                Decode::ReadConfirm { row, .. } => {
                    self.queued_rows.push(row);
                    self.begin_busy(
                        now,
                        PackageProfile::PLANE_QUEUE_WINDOW,
                        BusyKind::PlaneQueue,
                        Effect::None,
                    );
                    Ok(LunResponse::Accepted)
                }
                other => Err(unexpected(&other, "CMD MP-NEXT")),
            },
            op::READ_CACHE_SEQ => {
                // Move the just-read page to the cache register and fetch the
                // next sequential page in the background.
                if self.decode != Decode::Idle {
                    return Err(unexpected(&self.decode.clone(), "CMD READ-CACHE-SEQ"));
                }
                let Some(last) = self.last_loaded_row() else {
                    return Err(LunError::UnexpectedPhase {
                        state: "Idle(no page loaded)",
                        phase: "CMD READ-CACHE-SEQ".into(),
                    });
                };
                self.cache_reg = self.page_regs[self.active_plane as usize].clone();
                self.out = OutSource::CacheRegister;
                self.col = 0;
                let next = RowAddr {
                    page: (last.page + 1).min(self.array.geometry().pages_per_block - 1),
                    ..last
                };
                let dur = self.jittered(self.cfg.profile.t_r);
                self.begin_busy(
                    now,
                    dur,
                    BusyKind::CacheRead,
                    Effect::LoadPage {
                        rows: vec![next],
                        col: 0,
                        pslc: false,
                        into_cache_next: Some(next),
                    },
                );
                Ok(LunResponse::Accepted)
            }
            op::READ_CACHE_END => {
                if self.decode != Decode::Idle {
                    return Err(unexpected(&self.decode.clone(), "CMD READ-CACHE-END"));
                }
                self.cache_reg = self.page_regs[self.active_plane as usize].clone();
                self.out = OutSource::CacheRegister;
                self.col = 0;
                self.begin_busy(
                    now,
                    PackageProfile::CACHE_END_WINDOW,
                    BusyKind::CacheRead,
                    Effect::None,
                );
                Ok(LunResponse::Accepted)
            }
            op::CHANGE_READ_COL_1 => {
                self.decode = Decode::ChgRdColAddr { full: false };
                Ok(LunResponse::Accepted)
            }
            op::RANDOM_DATA_OUT_1 => {
                self.decode = Decode::ChgRdColAddr { full: true };
                Ok(LunResponse::Accepted)
            }
            op::CHANGE_READ_COL_2 => match std::mem::replace(&mut self.decode, Decode::Idle) {
                Decode::ChgRdColConfirm { row, col } => {
                    if let Some(row) = row {
                        self.active_plane = self.array.geometry().plane_of(row.block);
                    }
                    self.col = col;
                    if self.out != OutSource::CacheRegister && self.out != OutSource::ParamPage {
                        self.out = OutSource::PageRegister;
                    }
                    Ok(LunResponse::Accepted)
                }
                other => Err(unexpected(&other, "CMD CHG-RD-COL(2)")),
            },
            op::PROGRAM_1 => {
                self.decode = Decode::ProgAddr;
                Ok(LunResponse::Accepted)
            }
            op::CHANGE_WRITE_COL => match std::mem::replace(&mut self.decode, Decode::Idle) {
                Decode::ProgData { row } => {
                    self.decode = Decode::ChgWrColAddr { row };
                    Ok(LunResponse::Accepted)
                }
                other => Err(unexpected(&other, "CMD CHG-WR-COL")),
            },
            op::PROGRAM_2 | op::PROGRAM_CACHE => {
                match std::mem::replace(&mut self.decode, Decode::Idle) {
                    Decode::ProgData { row } => {
                        let pslc = self.take_pslc(row);
                        let dur = self.jittered(if pslc {
                            self.cfg.profile.t_prog_slc
                        } else {
                            self.cfg.profile.t_prog
                        });
                        let kind = if opcode == op::PROGRAM_CACHE {
                            BusyKind::CacheProgram
                        } else {
                            BusyKind::Program
                        };
                        self.begin_busy(now, dur, kind, Effect::CommitProgram { row, pslc });
                        Ok(LunResponse::Accepted)
                    }
                    other => Err(unexpected(&other, "CMD PROGRAM(2)")),
                }
            }
            op::ERASE_1 => {
                self.decode = Decode::EraseAddr;
                Ok(LunResponse::Accepted)
            }
            op::ERASE_2 => match std::mem::replace(&mut self.decode, Decode::Idle) {
                Decode::EraseConfirm { row } => {
                    let dur = self.jittered(self.cfg.profile.t_bers);
                    self.begin_busy(now, dur, BusyKind::Erase, Effect::CommitErase { row });
                    Ok(LunResponse::Accepted)
                }
                other => Err(unexpected(&other, "CMD ERASE(2)")),
            },
            op::SET_FEATURES => {
                self.decode = Decode::FeatAddrSet;
                Ok(LunResponse::Accepted)
            }
            op::GET_FEATURES => {
                self.decode = Decode::FeatAddrGet;
                Ok(LunResponse::Accepted)
            }
            op::READ_ID => {
                self.decode = Decode::IdAddr;
                Ok(LunResponse::Accepted)
            }
            op::READ_PARAM_PAGE => {
                self.decode = Decode::ParamAddr;
                Ok(LunResponse::Accepted)
            }
            other => Err(LunError::UnexpectedPhase {
                state: self.decode.name(),
                phase: format!("CMD {}", mnemonic(other)),
            }),
        }
    }

    fn on_address(&mut self, now: SimTime, bytes: &[u8]) -> Result<LunResponse, LunError> {
        match std::mem::replace(&mut self.decode, Decode::Idle) {
            Decode::ReadAddr => {
                let want = self.layout.full_cycles();
                if bytes.len() != want {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want,
                    });
                }
                let col = self.layout.unpack_col(&bytes[..self.layout.col_cycles]).0;
                let row = self.layout.unpack_row(&bytes[self.layout.col_cycles..]);
                self.decode = Decode::ReadConfirm { row, col };
                Ok(LunResponse::Accepted)
            }
            Decode::ChgRdColAddr { full } => {
                if full {
                    let want = self.layout.full_cycles();
                    if bytes.len() != want {
                        return Err(LunError::BadAddressLength {
                            got: bytes.len(),
                            want,
                        });
                    }
                    let col = self.layout.unpack_col(&bytes[..self.layout.col_cycles]).0;
                    let row = self.layout.unpack_row(&bytes[self.layout.col_cycles..]);
                    self.decode = Decode::ChgRdColConfirm {
                        row: Some(row),
                        col,
                    };
                } else {
                    let want = self.layout.col_cycles;
                    if bytes.len() != want {
                        return Err(LunError::BadAddressLength {
                            got: bytes.len(),
                            want,
                        });
                    }
                    let col = self.layout.unpack_col(bytes).0;
                    self.decode = Decode::ChgRdColConfirm { row: None, col };
                }
                Ok(LunResponse::Accepted)
            }
            Decode::ProgAddr => {
                let want = self.layout.full_cycles();
                if bytes.len() != want {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want,
                    });
                }
                let col = self.layout.unpack_col(&bytes[..self.layout.col_cycles]).0;
                let row = self.layout.unpack_row(&bytes[self.layout.col_cycles..]);
                self.active_plane = self.array.geometry().plane_of(row.block);
                let raw = self.array.geometry().raw_page_size();
                self.page_regs[self.active_plane as usize] = vec![0xFF; raw];
                self.col = col;
                self.decode = Decode::ProgData { row };
                Ok(LunResponse::Accepted)
            }
            Decode::ChgWrColAddr { row } => {
                let want = self.layout.col_cycles;
                if bytes.len() != want {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want,
                    });
                }
                self.col = self.layout.unpack_col(bytes).0;
                self.decode = Decode::ProgData { row };
                Ok(LunResponse::Accepted)
            }
            Decode::EraseAddr => {
                let want = self.layout.row_cycles;
                if bytes.len() != want {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want,
                    });
                }
                let row = self.layout.unpack_row(bytes);
                self.decode = Decode::EraseConfirm { row };
                Ok(LunResponse::Accepted)
            }
            Decode::FeatAddrSet => {
                if bytes.len() != 1 {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want: 1,
                    });
                }
                self.decode = Decode::FeatData { feature: bytes[0] };
                Ok(LunResponse::Accepted)
            }
            Decode::FeatAddrGet => {
                if bytes.len() != 1 {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want: 1,
                    });
                }
                self.out = OutSource::Features(bytes[0]);
                Ok(LunResponse::Accepted)
            }
            Decode::IdAddr => {
                if bytes.len() != 1 {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want: 1,
                    });
                }
                self.out = OutSource::Id;
                self.col = 0;
                Ok(LunResponse::Accepted)
            }
            Decode::ParamAddr => {
                if bytes.len() != 1 {
                    return Err(LunError::BadAddressLength {
                        got: bytes.len(),
                        want: 1,
                    });
                }
                let dur = self.jittered(self.cfg.profile.t_param);
                self.begin_busy(now, dur, BusyKind::ParamPage, Effect::LoadParamPage);
                Ok(LunResponse::Accepted)
            }
            other => Err(unexpected(&other, &format!("ADDR[{}]", bytes.len()))),
        }
    }

    fn on_data_in(&mut self, _now: SimTime, data: &[u8]) -> Result<LunResponse, LunError> {
        self.check_bulk_data_allowed()?;
        match std::mem::replace(&mut self.decode, Decode::Idle) {
            Decode::ProgData { row } => {
                let reg = &mut self.page_regs[self.active_plane as usize];
                let start = self.col as usize;
                let end = (start + data.len()).min(reg.len());
                if end > start {
                    reg[start..end].copy_from_slice(&data[..end - start]);
                }
                self.col = end as u32;
                self.stats.bytes_in += data.len() as u64;
                self.decode = Decode::ProgData { row };
                Ok(LunResponse::Accepted)
            }
            Decode::FeatData { feature } => {
                if data.len() != 4 {
                    return Err(LunError::BadAddressLength {
                        got: data.len(),
                        want: 4,
                    });
                }
                let value = [data[0], data[1], data[2], data[3]];
                self.features.set(feature, value);
                if feature == feat::TIMING_MODE {
                    self.apply_timing_mode(value);
                }
                Ok(LunResponse::Accepted)
            }
            other => Err(unexpected(&other, &format!("DIN[{}]", data.len()))),
        }
    }

    fn on_data_out(&mut self, now: SimTime, bytes: usize) -> Result<LunResponse, LunError> {
        if let Some(busy) = &self.busy {
            if !busy.kind.allows_data_out() && self.out != OutSource::Status {
                return Err(LunError::BusyViolation {
                    mnemonic: "DATA-OUT",
                });
            }
        }
        // Every response streams into one pooled buffer: the single write
        // of the payload on its way to the controller.
        let mut out = self.pool.acquire();
        match self.out {
            OutSource::Status => {
                self.stats.status_polls += 1;
                let st = self.current_status();
                out.resize(bytes.max(1), st.bits());
            }
            OutSource::Features(f) => {
                let v = self.features.get(f);
                for i in 0..bytes.max(1) {
                    out.push(v[i % v.len()]);
                }
            }
            OutSource::Id => {
                let id = [
                    self.cfg.profile.manufacturer_id,
                    self.cfg.profile.device_id,
                    self.cfg.profile.geometry.planes as u8,
                    self.cfg.profile.geometry.luns as u8,
                    0x51, // ONFI 5.1 marker byte
                ];
                for i in 0..bytes.max(1) {
                    out.push(id[i % id.len()]);
                }
            }
            OutSource::ParamPage => {
                self.check_bulk_data_allowed()?;
                self.col = slice_register(&self.param_buf, self.col, bytes, &mut out);
                self.maybe_scramble(now, out.as_mut_slice());
            }
            OutSource::PageRegister => {
                self.check_bulk_data_allowed()?;
                let reg = &self.page_regs[self.active_plane as usize];
                self.col = slice_register(reg, self.col, bytes, &mut out);
                self.maybe_scramble(now, out.as_mut_slice());
            }
            OutSource::CacheRegister => {
                self.check_bulk_data_allowed()?;
                self.col = slice_register(&self.cache_reg, self.col, bytes, &mut out);
                self.maybe_scramble(now, out.as_mut_slice());
            }
            OutSource::None => {
                return Err(LunError::UnexpectedPhase {
                    state: self.decode.name(),
                    phase: format!("DOUT[{bytes}]"),
                })
            }
        };
        self.stats.bytes_out += out.len() as u64;
        Ok(LunResponse::Data(out.freeze()))
    }

    /// Bulk data phases require the boot contract to have been honoured.
    fn check_bulk_data_allowed(&self) -> Result<(), LunError> {
        if !self.cfg.require_init {
            return Ok(());
        }
        if !self.initialized {
            return Err(LunError::NotInitialized);
        }
        Ok(())
    }

    /// Corrupts bulk data (in place) deterministically when the controller's
    /// DQS phase does not match the board trace (until calibration fixes it).
    fn maybe_scramble(&self, _now: SimTime, data: &mut [u8]) {
        if !self.cfg.require_init {
            return;
        }
        if matches!(self.iface, DataInterface::Sdr { .. }) {
            return; // SDR is slow enough to be phase-insensitive.
        }
        if self.configured_phase == Some(self.required_phase) {
            return;
        }
        for (i, b) in data.iter_mut().enumerate() {
            *b ^= 0xA5 ^ (i as u8).rotate_left(3);
        }
    }

    fn apply_timing_mode(&mut self, value: [u8; 4]) {
        /// NV-DDR2 timing-mode to MT/s mapping (ONFI 5.x Table 81).
        const NV_DDR2_MTS: [u32; 9] = [30, 40, 50, 66, 83, 100, 133, 166, 200];
        match value[1] {
            0 => {
                self.iface = DataInterface::Sdr {
                    mode: value[0].min(5),
                };
            }
            2 => {
                let mode = (value[0] as usize).min(8);
                let mts = NV_DDR2_MTS[mode].min(self.cfg.profile.max_mts);
                self.iface = DataInterface::NvDdr2 { mts };
            }
            _ => {}
        }
    }

    fn on_suspend(&mut self, now: SimTime, opcode: u8) -> Result<LunResponse, LunError> {
        let Some(busy) = &self.busy else {
            // Suspending an idle LUN is a no-op on real parts.
            return Ok(LunResponse::Accepted);
        };
        let matches_kind = matches!(
            (&busy.kind, opcode),
            (
                BusyKind::Program | BusyKind::CacheProgram,
                op::PROGRAM_SUSPEND
            ) | (BusyKind::Erase, op::ERASE_SUSPEND)
        );
        if !matches_kind {
            return Err(LunError::BusyViolation {
                mnemonic: mnemonic(opcode),
            });
        }
        let busy = self.busy.take().expect("just checked");
        let remaining = busy.until.saturating_since(now);
        self.suspended = Some(Suspended {
            remaining,
            kind: busy.kind,
            effect: busy.effect,
        });
        // The suspend itself takes a short latency window before the LUN is
        // usable (datasheet tESPD/tPSPD, ~20 us).
        self.begin_busy(
            now,
            PackageProfile::SUSPEND_WINDOW,
            BusyKind::Suspending,
            Effect::None,
        );
        Ok(LunResponse::Accepted)
    }

    fn on_resume(&mut self, now: SimTime) -> Result<LunResponse, LunError> {
        let Some(s) = self.suspended.take() else {
            return Ok(LunResponse::Accepted);
        };
        // Resume penalty: re-ramping the program/erase voltages costs a
        // little extra on top of the remaining time.
        self.begin_busy(
            now,
            s.remaining + PackageProfile::RESUME_PENALTY,
            s.kind,
            s.effect,
        );
        Ok(LunResponse::Accepted)
    }

    fn take_pslc(&mut self, _row: RowAddr) -> bool {
        let armed = self.pslc_armed || self.features.pslc_enabled();
        self.pslc_armed = false;
        self.retry_armed = false;
        armed
    }

    fn last_loaded_row(&self) -> Option<RowAddr> {
        self.last_row
    }
}

/// Streams `bytes` from `reg[col..]` into `out`, padding past-the-end with
/// `0xFF`; returns the advanced column pointer.
fn slice_register(reg: &[u8], col: u32, bytes: usize, out: &mut PageBufMut) -> u32 {
    let start = (col as usize).min(reg.len());
    let end = (start + bytes).min(reg.len());
    out.extend_from_slice(&reg[start..end]);
    out.resize(bytes, 0xFF);
    (start + bytes) as u32
}

fn unexpected(state: &Decode, phase: &str) -> LunError {
    LunError::UnexpectedPhase {
        state: state.name(),
        phase: phase.to_string(),
    }
}

/// Knuth's Poisson sampler, adequate for the small λ of page reads.
fn poisson(rng: &mut SplitMix64, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 100.0 {
        // Normal approximation for heavily worn pages.
        let u = rng.next_f64().max(1e-12);
        let v = rng.next_f64();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        return (lambda + z * lambda.sqrt()).max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    /// Drives phases into a LUN with a manually advanced clock.
    struct Driver {
        lun: Lun,
        now: SimTime,
    }

    impl Driver {
        fn new(cfg: LunConfig) -> Self {
            Driver {
                lun: Lun::new(cfg),
                now: SimTime::ZERO,
            }
        }

        fn tick(&mut self, d: SimDuration) {
            self.now += d;
        }

        fn cmd(&mut self, opcode: u8) -> LunResponse {
            self.tick(SimDuration::from_nanos(50));
            self.lun
                .phase(self.now, &PhaseKind::CmdLatch(opcode))
                .unwrap()
        }

        fn try_cmd(&mut self, opcode: u8) -> Result<LunResponse, LunError> {
            self.tick(SimDuration::from_nanos(50));
            self.lun.phase(self.now, &PhaseKind::CmdLatch(opcode))
        }

        fn addr(&mut self, bytes: Vec<u8>) -> LunResponse {
            self.tick(SimDuration::from_nanos(150));
            self.lun
                .phase(self.now, &PhaseKind::AddrLatch(bytes))
                .unwrap()
        }

        fn din(&mut self, data: Vec<u8>) -> LunResponse {
            self.tick(SimDuration::from_nanos(100));
            self.lun
                .phase(self.now, &PhaseKind::DataIn(data.into()))
                .unwrap()
        }

        fn dout(&mut self, bytes: usize) -> Vec<u8> {
            self.tick(SimDuration::from_nanos(100));
            match self
                .lun
                .phase(self.now, &PhaseKind::DataOut { bytes })
                .unwrap()
            {
                LunResponse::Data(d) => d.to_vec(),
                other => panic!("expected data, got {other:?}"),
            }
        }

        fn wait_ready(&mut self) {
            if let Some(until) = self.lun.busy_until() {
                self.now = self.now.max(until) + SimDuration::from_nanos(1);
            }
        }

        fn full_addr(&self, row: RowAddr, col: u32) -> Vec<u8> {
            let layout = self.lun.profile().geometry.addr_layout(16);
            layout.pack_full(babol_onfi::addr::ColumnAddr(col), row)
        }

        fn row_addr(&self, row: RowAddr) -> Vec<u8> {
            self.lun.profile().geometry.addr_layout(16).pack_row(row)
        }

        fn col_addr(&self, col: u32) -> Vec<u8> {
            self.lun
                .profile()
                .geometry
                .addr_layout(16)
                .pack_col(babol_onfi::addr::ColumnAddr(col))
        }

        /// Full page program sequence.
        fn program(&mut self, row: RowAddr, data: &[u8]) {
            self.cmd(op::PROGRAM_1);
            let a = self.full_addr(row, 0);
            self.addr(a);
            self.din(data.to_vec());
            self.cmd(op::PROGRAM_2);
            self.wait_ready();
        }

        /// Full page read sequence; returns `n` bytes from column 0.
        fn read(&mut self, row: RowAddr, n: usize) -> Vec<u8> {
            self.cmd(op::READ_1);
            let a = self.full_addr(row, 0);
            self.addr(a);
            self.cmd(op::READ_2);
            self.wait_ready();
            self.dout(n)
        }
    }

    fn row(block: u32, page: u32) -> RowAddr {
        RowAddr {
            lun: 0,
            block,
            page,
        }
    }

    #[test]
    fn read_sequence_times_and_streams() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_1);
        let a = d.full_addr(row(0, 0), 0);
        d.addr(a);
        assert!(d.lun.busy_until().is_none());
        d.cmd(op::READ_2);
        // Busy for exactly tR (no jitter in the test profile).
        let until = d.lun.busy_until().expect("busy after confirm");
        assert_eq!(until - d.now, PackageProfile::test_tiny().t_r);
        assert!(!d.lun.status(d.now).is_ready());
        d.wait_ready();
        assert!(d.lun.status(d.now).is_ready());
        let bytes = d.dout(16);
        assert_eq!(bytes, vec![0xFF; 16]); // pristine page
        assert_eq!(d.lun.stats().reads, 1);
    }

    #[test]
    fn busy_tracking_logs_every_array_busy_window() {
        let mut d = Driver::new(LunConfig::test_default());
        d.lun.set_busy_tracking(true);
        d.read(row(0, 0), 4);
        d.program(row(0, 1), b"xyzw");
        assert_eq!(d.lun.busy_intervals().len(), 2, "one span per tR/tPROG");
        let profile = PackageProfile::test_tiny();
        let expect = profile.t_r + profile.t_prog;
        assert_eq!(d.lun.busy_intervals().total_busy(), expect);
        // Tracking is opt-in: a fresh LUN records nothing.
        let mut quiet = Driver::new(LunConfig::test_default());
        quiet.read(row(0, 0), 4);
        assert!(quiet.lun.busy_intervals().is_empty());
    }

    #[test]
    fn program_read_roundtrip_with_column() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), b"abcdef");
        let got = d.read(row(0, 0), 6);
        assert_eq!(&got, b"abcdef");
        // Change read column to offset 2.
        d.cmd(op::CHANGE_READ_COL_1);
        let c = d.col_addr(2);
        d.addr(c);
        d.cmd(op::CHANGE_READ_COL_2);
        assert_eq!(d.dout(4), b"cdef".to_vec());
    }

    #[test]
    fn status_poll_loop_matches_paper_algorithm() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_1);
        let a = d.full_addr(row(1, 0), 0);
        d.addr(a);
        d.cmd(op::READ_2);
        // Poll READ STATUS like Algorithm 1/2: issue 0x70, read one byte.
        let mut polls = 0;
        loop {
            d.cmd(op::READ_STATUS);
            let st = d.dout(1)[0];
            polls += 1;
            if st & 0x40 != 0 {
                break;
            }
            d.tick(SimDuration::from_micros(2));
        }
        assert!(polls > 1, "tR should take several polls");
        // Restore data output with 0x00 and stream.
        d.cmd(op::READ_1);
        // ONFI: a bare 0x00 after status restores output; simulate via
        // data-out directly (decode state tolerates it).
        let data = d.dout(8);
        assert_eq!(data.len(), 8);
        assert_eq!(d.lun.stats().status_polls, polls);
    }

    #[test]
    fn busy_violation_rejected() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_1);
        let a = d.full_addr(row(0, 0), 0);
        d.addr(a);
        d.cmd(op::READ_2);
        let err = d.try_cmd(op::READ_1).unwrap_err();
        assert!(matches!(err, LunError::BusyViolation { .. }));
    }

    #[test]
    fn pslc_prefix_speeds_up_read() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::PSLC_PREFIX);
        d.cmd(op::READ_1);
        let a = d.full_addr(row(0, 0), 0);
        d.addr(a);
        d.cmd(op::READ_2);
        let until = d.lun.busy_until().unwrap();
        assert_eq!(until - d.now, PackageProfile::test_tiny().t_r_slc);
    }

    #[test]
    fn pslc_program_records_mode() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::PSLC_PREFIX);
        d.cmd(op::PROGRAM_1);
        let a = d.full_addr(row(2, 0), 0);
        d.addr(a);
        d.din(vec![1, 2, 3]);
        d.cmd(op::PROGRAM_2);
        let until = d.lun.busy_until().unwrap();
        assert_eq!(until - d.now, PackageProfile::test_tiny().t_prog_slc);
        d.wait_ready();
        d.lun.status(d.now);
        assert_eq!(
            d.lun.array().page_state(row(2, 0)).unwrap(),
            crate::array::PageState::Programmed { pslc: true }
        );
    }

    #[test]
    fn erase_sequence() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), &[9]);
        d.cmd(op::ERASE_1);
        let a = d.row_addr(row(0, 0));
        d.addr(a);
        d.cmd(op::ERASE_2);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::Erase));
        d.wait_ready();
        d.lun.status(d.now);
        assert_eq!(d.lun.array().erase_count(0), 1);
        assert_eq!(d.read(row(0, 0), 1), vec![0xFF]);
    }

    #[test]
    fn program_status_reports_failure_on_reprogram() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), &[1]);
        // Program the same page again without erase: must FAIL via status.
        d.program(row(0, 0), &[2]);
        let st = d.lun.status(d.now);
        assert!(st.failed());
        // Content unchanged.
        assert_eq!(d.read(row(0, 0), 1), vec![1]);
    }

    #[test]
    fn set_features_switches_interface() {
        let mut d = Driver::new(LunConfig::test_default());
        assert_eq!(d.lun.interface(), DataInterface::Sdr { mode: 0 });
        d.cmd(op::SET_FEATURES);
        d.addr(vec![feat::TIMING_MODE]);
        d.din(vec![8, 2, 0, 0]); // NV-DDR2 mode 8 = 200 MT/s
        assert_eq!(d.lun.interface(), DataInterface::NvDdr2 { mts: 200 });
        // GET FEATURES reads it back.
        d.cmd(op::GET_FEATURES);
        d.addr(vec![feat::TIMING_MODE]);
        assert_eq!(d.dout(4), vec![8, 2, 0, 0]);
    }

    #[test]
    fn read_id_returns_profile_ids() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_ID);
        d.addr(vec![0x00]);
        let id = d.dout(2);
        assert_eq!(id[0], PackageProfile::test_tiny().manufacturer_id);
        assert_eq!(id[1], PackageProfile::test_tiny().device_id);
    }

    #[test]
    fn param_page_has_three_valid_copies() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_PARAM_PAGE);
        d.addr(vec![0x00]);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::ParamPage));
        d.wait_ready();
        let buf = d.dout(256 * 3);
        for copy in 0..3 {
            let page =
                babol_onfi::param_page::ParamPage::from_bytes(&buf[copy * 256..(copy + 1) * 256])
                    .unwrap();
            assert_eq!(page.page_size as usize, Geometry::tiny().page_size);
        }
    }

    #[test]
    fn cache_read_streams_while_fetching() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), b"page-zero");
        d.program(row(0, 1), b"page-one!");
        // Normal read of page 0.
        d.read(row(0, 0), 1);
        // Kick a cache read: page 0 moves to cache, page 1 fetch starts.
        d.cmd(op::READ_CACHE_SEQ);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::CacheRead));
        let st = d.lun.status(d.now);
        assert!(st.is_ready() && !st.array_ready());
        // Data-out during cache busy streams the *cached* page 0.
        assert_eq!(d.dout(9), b"page-zero".to_vec());
        d.wait_ready();
        // Terminate: page 1 moves to cache.
        d.cmd(op::READ_CACHE_END);
        d.wait_ready();
        d.lun.status(d.now);
        assert_eq!(d.dout(9), b"page-one!".to_vec());
    }

    #[test]
    fn erase_suspend_and_resume() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(1, 0), &[7]);
        d.cmd(op::ERASE_1);
        let a = d.row_addr(row(1, 0));
        d.addr(a);
        d.cmd(op::ERASE_2);
        // Part-way through the erase, suspend it.
        d.tick(SimDuration::from_micros(30));
        d.cmd(op::ERASE_SUSPEND);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::Suspending));
        d.wait_ready();
        assert!(d.lun.status(d.now).is_ready());
        // A read can happen while the erase is suspended (different block).
        d.program(row(2, 0), b"interleaved");
        assert_eq!(d.read(row(2, 0), 11), b"interleaved".to_vec());
        // The suspended block has NOT been erased yet.
        assert_eq!(d.lun.array().erase_count(1), 0);
        // Resume and let it finish.
        d.cmd(op::SUSPEND_RESUME);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::Erase));
        d.wait_ready();
        d.lun.status(d.now);
        assert_eq!(d.lun.array().erase_count(1), 1);
    }

    #[test]
    fn reset_clears_features_and_interface() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::SET_FEATURES);
        d.addr(vec![feat::TIMING_MODE]);
        d.din(vec![8, 2, 0, 0]);
        d.cmd(op::RESET);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::Reset));
        d.wait_ready();
        d.lun.status(d.now);
        assert_eq!(d.lun.interface(), DataInterface::Sdr { mode: 0 });
    }

    #[test]
    fn reset_is_legal_while_busy() {
        let mut d = Driver::new(LunConfig::test_default());
        d.cmd(op::READ_1);
        let a = d.full_addr(row(0, 0), 0);
        d.addr(a);
        d.cmd(op::READ_2);
        // RESET mid-tR aborts the read.
        d.cmd(op::RESET);
        assert_eq!(d.lun.busy_kind(), Some(BusyKind::Reset));
    }

    #[test]
    fn multi_plane_read_loads_both_planes() {
        let mut d = Driver::new(LunConfig::test_default());
        // Blocks 0 and 1 are on planes 0 and 1.
        d.program(row(0, 0), b"plane-zero");
        d.program(row(1, 0), b"plane-one!");
        // Queue plane 0, then confirm with plane 1.
        d.cmd(op::READ_1);
        let a0 = d.full_addr(row(0, 0), 0);
        d.addr(a0);
        d.cmd(op::MULTI_PLANE_NEXT);
        d.wait_ready();
        d.lun.status(d.now);
        d.cmd(op::READ_1);
        let a1 = d.full_addr(row(1, 0), 0);
        d.addr(a1);
        d.cmd(op::READ_2);
        d.wait_ready();
        d.lun.status(d.now);
        // Active plane is the last addressed one (plane 1).
        assert_eq!(d.dout(10), b"plane-one!".to_vec());
        // RANDOM DATA OUT selects plane 0.
        d.cmd(op::RANDOM_DATA_OUT_1);
        let sel = d.full_addr(row(0, 0), 0);
        d.addr(sel);
        d.cmd(op::CHANGE_READ_COL_2);
        assert_eq!(d.dout(10), b"plane-zero".to_vec());
    }

    #[test]
    fn error_injection_flips_bits_on_worn_blocks() {
        let mut cfg = LunConfig::test_default();
        cfg.inject_errors = true;
        cfg.profile.cell = crate::ber::CellType::Qlc;
        let mut d = Driver::new(cfg);
        // Wear block 0 out heavily.
        for _ in 0..2000 {
            d.cmd(op::ERASE_1);
            let a = d.row_addr(row(0, 0));
            d.addr(a);
            d.cmd(op::ERASE_2);
            d.wait_ready();
            d.lun.status(d.now);
        }
        d.program(row(0, 0), &vec![0u8; 512]);
        let got = d.read(row(0, 0), 512);
        let flipped: u32 = got.iter().map(|&b| b.count_ones()).sum();
        assert!(flipped > 0, "expected bit errors on a worn QLC block");
    }

    #[test]
    fn clean_reads_without_injection() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), &[0u8; 128]);
        let got = d.read(row(0, 0), 128);
        assert!(got.iter().all(|&b| b == 0));
    }

    #[test]
    fn boot_contract_blocks_uninitialized_bulk_data() {
        let mut cfg = LunConfig::test_default();
        cfg.require_init = true;
        let mut d = Driver::new(cfg);
        d.cmd(op::READ_1);
        let a = d.full_addr(row(0, 0), 0);
        d.addr(a);
        d.cmd(op::READ_2);
        d.wait_ready();
        d.lun.status(d.now);
        d.tick(SimDuration::from_nanos(100));
        let err = d
            .lun
            .phase(d.now, &PhaseKind::DataOut { bytes: 4 })
            .unwrap_err();
        assert_eq!(err, LunError::NotInitialized);
        // Status remains readable before init.
        d.cmd(op::READ_STATUS);
        let _ = d.dout(1);
    }

    #[test]
    fn calibration_phase_scrambles_high_speed_data() {
        let mut cfg = LunConfig::test_default();
        cfg.require_init = true;
        cfg.seed = 42;
        let mut d = Driver::new(cfg);
        // Boot: RESET, then raise the interface to NV-DDR2.
        d.cmd(op::RESET);
        d.wait_ready();
        d.lun.status(d.now);
        d.cmd(op::SET_FEATURES);
        d.addr(vec![feat::TIMING_MODE]);
        d.din(vec![8, 2, 0, 0]);
        d.program(row(0, 0), b"calibrate-me");
        let required = d.lun.required_phase_for_tests();
        // Wrong phase: scrambled.
        d.lun.set_drive_phase(required.wrapping_add(1) % 8);
        let garbled = d.read(row(0, 0), 12);
        assert_ne!(garbled, b"calibrate-me".to_vec());
        // Right phase: clean.
        d.lun.set_drive_phase(required);
        let clean = d.read(row(0, 0), 12);
        assert_eq!(clean, b"calibrate-me".to_vec());
    }

    #[test]
    fn sdr_data_is_phase_insensitive() {
        let mut cfg = LunConfig::test_default();
        cfg.require_init = true;
        let mut d = Driver::new(cfg);
        d.cmd(op::RESET);
        d.wait_ready();
        d.lun.status(d.now);
        // Still in SDR mode 0; no calibration done, reads are clean.
        d.program(row(0, 0), b"sdr-boot");
        assert_eq!(d.read(row(0, 0), 8), b"sdr-boot".to_vec());
    }

    #[test]
    fn data_out_past_register_end_pads_ff() {
        let mut d = Driver::new(LunConfig::test_default());
        d.program(row(0, 0), &[1, 2, 3]);
        d.read(row(0, 0), 1);
        // Jump to the last byte of the raw page and over-read.
        let raw = Geometry::tiny().raw_page_size() as u32;
        d.cmd(op::CHANGE_READ_COL_1);
        let c = d.col_addr(raw - 2);
        d.addr(c);
        d.cmd(op::CHANGE_READ_COL_2);
        let tail = d.dout(6);
        assert_eq!(tail.len(), 6);
        assert_eq!(&tail[2..], &[0xFF; 4]);
    }

    #[test]
    fn jitter_bounds_hold() {
        let mut cfg = LunConfig::test_default();
        cfg.profile.jitter_pct = 10;
        let nominal = cfg.profile.t_r;
        let mut d = Driver::new(cfg);
        for i in 0..50 {
            d.cmd(op::READ_1);
            let a = d.full_addr(row(0, i % 8), 0);
            d.addr(a);
            d.cmd(op::READ_2);
            let dur = d.lun.busy_until().unwrap() - d.now;
            assert!(dur >= nominal - nominal / 10, "iter {i}: {dur}");
            assert!(dur <= nominal + nominal / 10, "iter {i}: {dur}");
            d.wait_ready();
            d.lun.status(d.now);
        }
    }
}

//! Error types for the flash substrate.

use std::fmt;

use babol_onfi::addr::RowAddr;

/// Physical-layer errors from the array itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// The row address does not exist in this geometry.
    AddressOutOfRange {
        /// The offending address.
        row: RowAddr,
    },
    /// Programming a page that is already programmed (no erase in between).
    ProgramOnProgrammed {
        /// The offending address.
        row: RowAddr,
    },
    /// Programming pages of a block out of ascending order.
    OutOfOrderProgram {
        /// The offending address.
        row: RowAddr,
        /// The page index the block expected next.
        expected: u32,
    },
    /// Program data exceeds the raw page size.
    DataTooLong {
        /// Supplied length.
        len: usize,
        /// Raw page size (data + spare).
        max: usize,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::AddressOutOfRange { row } => {
                write!(f, "address {row} out of range")
            }
            FlashError::ProgramOnProgrammed { row } => {
                write!(f, "program on already-programmed page {row}")
            }
            FlashError::OutOfOrderProgram { row, expected } => write!(
                f,
                "out-of-order program at {row}: block expects page {expected} next"
            ),
            FlashError::DataTooLong { len, max } => {
                write!(f, "program data of {len} bytes exceeds raw page size {max}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// Protocol-layer errors: the controller drove an illegal waveform at the
/// LUN. On real silicon these would be undefined behaviour; the model makes
/// them loud so controller bugs are caught in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LunError {
    /// A phase arrived that the current decode state cannot accept.
    UnexpectedPhase {
        /// Decode state the LUN was in.
        state: &'static str,
        /// Label of the offending phase.
        phase: String,
    },
    /// A command arrived while the LUN was busy and the command is not one
    /// of the busy-legal ones (READ STATUS, suspend, RESET).
    BusyViolation {
        /// Mnemonic of the offending command.
        mnemonic: &'static str,
    },
    /// An address latch carried the wrong number of cycles.
    BadAddressLength {
        /// Cycles received.
        got: usize,
        /// Cycles required.
        want: usize,
    },
    /// A data phase was attempted at NV-DDR2 speed before the interface was
    /// configured and calibrated (paper §IV-C boot requirements).
    NotInitialized,
    /// The physical layer refused the operation.
    Flash(FlashError),
}

impl fmt::Display for LunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LunError::UnexpectedPhase { state, phase } => {
                write!(f, "unexpected phase {phase} in decode state {state}")
            }
            LunError::BusyViolation { mnemonic } => {
                write!(f, "command {mnemonic} issued while LUN busy")
            }
            LunError::BadAddressLength { got, want } => {
                write!(f, "address latch of {got} cycles where {want} expected")
            }
            LunError::NotInitialized => {
                write!(f, "high-speed data phase before init/calibration")
            }
            LunError::Flash(e) => write!(f, "flash: {e}"),
        }
    }
}

impl std::error::Error for LunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LunError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for LunError {
    fn from(e: FlashError) -> Self {
        LunError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let row = RowAddr {
            lun: 0,
            block: 1,
            page: 2,
        };
        assert!(FlashError::AddressOutOfRange { row }
            .to_string()
            .contains("L0/B1/P2"));
        assert!(LunError::NotInitialized.to_string().contains("calibration"));
        assert!(LunError::from(FlashError::ProgramOnProgrammed { row })
            .to_string()
            .starts_with("flash:"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let row = RowAddr {
            lun: 0,
            block: 0,
            page: 0,
        };
        let e = LunError::Flash(FlashError::ProgramOnProgrammed { row });
        assert!(e.source().is_some());
        assert!(LunError::NotInitialized.source().is_none());
    }
}
